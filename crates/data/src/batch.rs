//! Mini-batch assembly.

use rand::seq::SliceRandom;
use rand::Rng;
use tsdx_tensor::Tensor;

use crate::clipgen::Clip;

/// A mini-batch of clips with stacked tensors and per-head labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Videos stacked to `[B, T, H, W]`.
    pub videos: Tensor,
    /// Ego-maneuver class per clip.
    pub ego: Vec<usize>,
    /// Road-kind class per clip.
    pub road: Vec<usize>,
    /// Primary-event class per clip.
    pub event: Vec<usize>,
    /// Position class per clip.
    pub position: Vec<usize>,
    /// Actor presence multi-hot `[B, 3]`.
    pub presence: Tensor,
}

impl Batch {
    /// Number of clips in the batch.
    pub fn len(&self) -> usize {
        self.ego.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ego.is_empty()
    }
}

/// Stacks clips into a [`Batch`].
///
/// # Panics
///
/// Panics on an empty slice or mismatched video shapes.
pub fn collate(clips: &[&Clip]) -> Batch {
    assert!(!clips.is_empty(), "cannot collate an empty batch");
    let shape = clips[0].video.shape().to_vec();
    let mut videos = Vec::with_capacity(clips.len() * clips[0].video.numel());
    let mut presence = Vec::with_capacity(clips.len() * 3);
    let mut ego = Vec::with_capacity(clips.len());
    let mut road = Vec::with_capacity(clips.len());
    let mut event = Vec::with_capacity(clips.len());
    let mut position = Vec::with_capacity(clips.len());
    for c in clips {
        assert_eq!(c.video.shape(), &shape[..], "clip shape mismatch in batch");
        videos.extend_from_slice(c.video.data());
        presence.extend_from_slice(&c.labels.presence);
        ego.push(c.labels.ego);
        road.push(c.labels.road);
        event.push(c.labels.event);
        position.push(c.labels.position);
    }
    let mut vshape = vec![clips.len()];
    vshape.extend_from_slice(&shape);
    Batch {
        videos: Tensor::from_vec(videos, &vshape),
        ego,
        road,
        event,
        position,
        presence: Tensor::from_vec(presence, &[clips.len(), 3]),
    }
}

/// Yields shuffled mini-batches of `indices` into `clips`, one epoch at a
/// time. The final short batch is kept.
pub fn epoch_batches(
    clips: &[Clip],
    indices: &[usize],
    batch_size: usize,
    rng: &mut impl Rng,
) -> Vec<Batch> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order: Vec<usize> = indices.to_vec();
    order.shuffle(rng);
    order
        .chunks(batch_size)
        .map(|chunk| {
            let refs: Vec<&Clip> = chunk.iter().map(|&i| &clips[i]).collect();
            collate(&refs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clipgen::{generate_dataset, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_render::RenderConfig;

    fn clips(n: usize) -> Vec<Clip> {
        generate_dataset(&DatasetConfig {
            n_clips: n,
            render: RenderConfig { width: 8, height: 8, frames: 2, ..RenderConfig::default() },
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn collate_shapes() {
        let cs = clips(5);
        let refs: Vec<&Clip> = cs.iter().collect();
        let b = collate(&refs);
        assert_eq!(b.videos.shape(), &[5, 2, 8, 8]);
        assert_eq!(b.presence.shape(), &[5, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn collate_preserves_order_and_values() {
        let cs = clips(3);
        let refs: Vec<&Clip> = cs.iter().collect();
        let b = collate(&refs);
        for (i, c) in cs.iter().enumerate() {
            assert_eq!(b.ego[i], c.labels.ego);
            let n = c.video.numel();
            assert_eq!(&b.videos.data()[i * n..(i + 1) * n], c.video.data());
        }
    }

    #[test]
    fn epoch_batches_cover_every_index_once() {
        let cs = clips(10);
        let idx: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let batches = epoch_batches(&cs, &idx, 4, &mut rng);
        assert_eq!(batches.len(), 3); // 4 + 4 + 2
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn shuffling_changes_order_between_epochs() {
        let cs = clips(8);
        let idx: Vec<usize> = (0..8).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let a = epoch_batches(&cs, &idx, 8, &mut rng);
        let b = epoch_batches(&cs, &idx, 8, &mut rng);
        // Same multiset of egos, but (almost surely) different order.
        let mut ea = a[0].ego.clone();
        let mut eb = b[0].ego.clone();
        assert_ne!(a[0].ego, b[0].ego, "two epochs produced identical order");
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }
}
