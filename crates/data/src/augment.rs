//! Label-aware data augmentation.

use rand::Rng;
use tsdx_sdl::{EgoManeuver, Position, RoadKind, Scenario};
use tsdx_tensor::Tensor;

use crate::clipgen::Clip;
use crate::labels::ClipLabels;

/// Mirrors a scenario left-to-right: lane changes, turns, curves, and
/// positions swap sides; everything else is invariant.
pub fn flip_scenario(s: &Scenario) -> Scenario {
    let ego = match s.ego {
        EgoManeuver::TurnLeft => EgoManeuver::TurnRight,
        EgoManeuver::TurnRight => EgoManeuver::TurnLeft,
        EgoManeuver::LaneChangeLeft => EgoManeuver::LaneChangeRight,
        EgoManeuver::LaneChangeRight => EgoManeuver::LaneChangeLeft,
        other => other,
    };
    let road = match s.road {
        RoadKind::CurveLeft => RoadKind::CurveRight,
        RoadKind::CurveRight => RoadKind::CurveLeft,
        other => other,
    };
    let actors = s
        .actors
        .iter()
        .map(|a| {
            let position = a.position.map(|p| match p {
                Position::Left => Position::Right,
                Position::Right => Position::Left,
                other => other,
            });
            tsdx_sdl::ActorClause { kind: a.kind, action: a.action, position }
        })
        .collect();
    Scenario { ego, actors, road }
}

/// Horizontally mirrors a `[T, H, W]` video tensor.
pub fn flip_video(video: &Tensor) -> Tensor {
    let sh = video.shape();
    assert_eq!(sh.len(), 3, "expected [T, H, W] video");
    let (t, h, w) = (sh[0], sh[1], sh[2]);
    let src = video.data();
    let mut out = Vec::with_capacity(src.len());
    for f in 0..t {
        for r in 0..h {
            let row = &src[(f * h + r) * w..(f * h + r + 1) * w];
            out.extend(row.iter().rev());
        }
    }
    Tensor::from_vec(out, sh)
}

/// Mirrors a full clip (video + labels consistently).
pub fn flip_clip(clip: &Clip) -> Clip {
    let truth = flip_scenario(&clip.truth);
    let labels = ClipLabels::from_scenario(&truth);
    Clip { video: flip_video(&clip.video), truth, labels }
}

/// Adds a uniform brightness shift in `[-amount, amount]`, clamped to
/// `[0, 1]`.
pub fn jitter_brightness(video: &Tensor, amount: f32, rng: &mut impl Rng) -> Tensor {
    let delta = rng.random_range(-amount..=amount);
    video.map(|v| (v + delta).clamp(0.0, 1.0))
}

/// Expands a training set with horizontal flips (doubling it) — the
/// standard augmentation for the extraction task.
pub fn augment_with_flips(clips: &[Clip]) -> Vec<Clip> {
    let mut out = Vec::with_capacity(clips.len() * 2);
    for c in clips {
        out.push(c.clone());
        out.push(flip_clip(c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_sdl::{ActorAction, ActorClause, ActorKind};

    #[test]
    fn flip_scenario_swaps_sided_labels() {
        let s = Scenario::new(EgoManeuver::TurnLeft, RoadKind::Intersection).with_actor(
            ActorClause::at(ActorKind::Pedestrian, ActorAction::Crossing, Position::Left),
        );
        let f = flip_scenario(&s);
        assert_eq!(f.ego, EgoManeuver::TurnRight);
        assert_eq!(f.actors[0].position, Some(Position::Right));
        // Double flip is identity.
        assert_eq!(flip_scenario(&f), s);
    }

    #[test]
    fn flip_scenario_preserves_unsided_labels() {
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight).with_actor(ActorClause::at(
            ActorKind::Vehicle,
            ActorAction::Leading,
            Position::Ahead,
        ));
        let f = flip_scenario(&s);
        assert_eq!(f, s);
    }

    #[test]
    fn flip_video_mirrors_columns() {
        let v = Tensor::from_fn(&[1, 2, 3], |i| i as f32);
        let f = flip_video(&v);
        assert_eq!(f.data(), &[2.0, 1.0, 0.0, 5.0, 4.0, 3.0]);
        // Involution.
        assert_eq!(flip_video(&f), v);
    }

    #[test]
    fn flipped_clip_labels_stay_consistent() {
        let truth = Scenario::new(EgoManeuver::LaneChangeLeft, RoadKind::Straight).with_actor(
            ActorClause::at(ActorKind::Vehicle, ActorAction::Overtaking, Position::Left),
        );
        let clip = Clip {
            video: Tensor::zeros(&[2, 4, 4]),
            labels: ClipLabels::from_scenario(&truth),
            truth,
        };
        let f = flip_clip(&clip);
        assert_eq!(f.labels, ClipLabels::from_scenario(&f.truth));
        assert_eq!(f.truth.ego, EgoManeuver::LaneChangeRight);
        assert_eq!(f.truth.actors[0].position, Some(Position::Right));
    }

    #[test]
    fn brightness_jitter_stays_in_range() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let v = Tensor::from_fn(&[1, 4, 4], |i| (i as f32) / 15.0);
        let mut rng = StdRng::seed_from_u64(0);
        let j = jitter_brightness(&v, 0.3, &mut rng);
        assert!(j.min() >= 0.0 && j.max() <= 1.0);
        assert_eq!(j.shape(), v.shape());
    }

    #[test]
    fn augment_doubles_the_set() {
        let truth = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        let clip = Clip {
            video: Tensor::zeros(&[1, 2, 2]),
            labels: ClipLabels::from_scenario(&truth),
            truth,
        };
        let out = augment_with_flips(&[clip]);
        assert_eq!(out.len(), 2);
    }
}
