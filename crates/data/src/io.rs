//! Dataset (de)serialization: write generated clip datasets to disk and
//! load them back, so expensive generation runs once per configuration.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   b"TSDXCLP1"
//! u32     clip count
//! repeat: u32 rank, u32 dims..., f32 video data (row-major),
//!         u32 text length, canonical SDL text (UTF-8)
//! ```
//!
//! Labels are re-derived from the SDL text on load, so the file stays
//! valid if the label vocabulary derivation evolves.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use tsdx_tensor::Tensor;

use crate::clipgen::Clip;
use crate::labels::ClipLabels;

const MAGIC: &[u8; 8] = b"TSDXCLP1";

/// Error loading a clip dataset file.
#[derive(Debug)]
pub enum DatasetIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a tsdx clip file, or corrupt.
    Format(String),
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DatasetIoError::Format(m) => write!(f, "invalid dataset file: {m}"),
        }
    }
}

impl Error for DatasetIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetIoError::Io(e) => Some(e),
            DatasetIoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for DatasetIoError {
    fn from(e: io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

/// Writes `clips` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_clips(clips: &[Clip], path: impl AsRef<Path>) -> Result<(), DatasetIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(clips.len() as u32).to_le_bytes())?;
    for clip in clips {
        let shape = clip.video.shape();
        w.write_all(&(shape.len() as u32).to_le_bytes())?;
        for &d in shape {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in clip.video.data() {
            w.write_all(&v.to_le_bytes())?;
        }
        let text = clip.truth.to_string();
        w.write_all(&(text.len() as u32).to_le_bytes())?;
        w.write_all(text.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a clip dataset written by [`save_clips`].
///
/// # Errors
///
/// Returns [`DatasetIoError::Format`] on bad magic, corrupt structure, or
/// unparseable SDL text; [`DatasetIoError::Io`] on read failures.
pub fn load_clips(path: impl AsRef<Path>) -> Result<Vec<Clip>, DatasetIoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DatasetIoError::Format("bad magic number".into()));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 10_000_000 {
        return Err(DatasetIoError::Format(format!("implausible clip count {count}")));
    }
    let mut clips = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank == 0 || rank > 8 {
            return Err(DatasetIoError::Format(format!("implausible video rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let n: usize = shape.iter().product();
        if n > 256 << 20 {
            return Err(DatasetIoError::Format("implausible video size".into()));
        }
        let mut data = vec![0.0f32; n];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        let text_len = read_u32(&mut r)? as usize;
        if text_len > 4096 {
            return Err(DatasetIoError::Format("implausible SDL text length".into()));
        }
        let mut text = vec![0u8; text_len];
        r.read_exact(&mut text)?;
        let text = String::from_utf8(text)
            .map_err(|_| DatasetIoError::Format("non-UTF-8 SDL text".into()))?;
        let truth = text
            .parse::<tsdx_sdl::Scenario>()
            .map_err(|e| DatasetIoError::Format(format!("bad SDL `{text}`: {e}")))?;
        let labels = ClipLabels::from_scenario(&truth);
        clips.push(Clip { video: Tensor::from_vec(data, &shape), truth, labels });
    }
    Ok(clips)
}

fn read_u32(r: &mut impl Read) -> Result<u32, DatasetIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clipgen::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tsdx-ds-{name}-{}.bin", std::process::id()))
    }

    fn tiny() -> Vec<Clip> {
        generate_dataset(&DatasetConfig {
            n_clips: 6,
            render: RenderConfig { width: 8, height: 8, frames: 2, ..RenderConfig::default() },
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let clips = tiny();
        let path = tmp("roundtrip");
        save_clips(&clips, &path).unwrap();
        let loaded = load_clips(&path).unwrap();
        assert_eq!(loaded.len(), clips.len());
        for (a, b) in clips.iter().zip(&loaded) {
            assert_eq!(a.video, b.video);
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.labels, b.labels);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let path = tmp("empty");
        save_clips(&[], &path).unwrap();
        assert!(load_clips(&path).unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a dataset").unwrap();
        assert!(matches!(load_clips(&path), Err(DatasetIoError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let clips = tiny();
        let path = tmp("trunc");
        save_clips(&clips, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        assert!(load_clips(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
