//! # tsdx-data
//!
//! The dataset pipeline: deterministic generation of labeled video clips
//! from the simulator and renderer, stratified splits, mini-batching, and
//! label-aware augmentation.
//!
//! Determinism contract: clip `i` of a [`DatasetConfig`] always derives its
//! RNG seed from `base_seed + i`, so datasets are reproducible across runs
//! and across worker counts.
//!
//! # Examples
//!
//! ```
//! use tsdx_data::{generate_dataset, stratified_split, DatasetConfig};
//! use tsdx_render::RenderConfig;
//!
//! let cfg = DatasetConfig {
//!     n_clips: 12,
//!     render: RenderConfig { width: 8, height: 8, frames: 2, ..RenderConfig::default() },
//!     ..DatasetConfig::default()
//! };
//! let clips = generate_dataset(&cfg);
//! let split = stratified_split(&clips, (0.5, 0.25), 42);
//! assert_eq!(split.len(), 12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod augment;
mod batch;
mod clipgen;
pub mod io;
mod labels;
mod split;
mod stats;

pub use augment::{augment_with_flips, flip_clip, flip_scenario, flip_video, jitter_brightness};
pub use batch::{collate, epoch_batches, Batch};
pub use clipgen::{generate_clip, generate_dataset, Clip, DatasetConfig};
pub use io::{load_clips, save_clips, DatasetIoError};
pub use labels::{ClipLabels, POSITION_COUNT, POSITION_NONE};
pub use split::{select, stratified_split, Split};
pub use stats::DatasetStats;
