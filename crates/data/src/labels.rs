//! Conversion between SDL scenarios and the model's label heads.
//!
//! The extractor predicts five quantities per clip:
//!
//! | head        | type            | classes |
//! |-------------|-----------------|---------|
//! | ego         | softmax         | [`EgoManeuver::COUNT`] |
//! | road        | softmax         | [`RoadKind::COUNT`] |
//! | event       | softmax         | [`vocab::EVENT_COUNT`] (primary actor, incl. *none*) |
//! | position    | softmax         | [`Position::COUNT`] + 1 (*none*) |
//! | presence    | multi-label     | [`ActorKind::COUNT`] |

use tsdx_sdl::{vocab, ActorKind, EgoManeuver, Position, RoadKind, Scenario};

/// Number of classes of the position head (four positions plus *none*).
pub const POSITION_COUNT: usize = Position::COUNT + 1;

/// Label index of the *none* position.
pub const POSITION_NONE: usize = Position::COUNT;

/// Integer / multi-hot labels for one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipLabels {
    /// Ego-maneuver class index.
    pub ego: usize,
    /// Road-kind class index.
    pub road: usize,
    /// Primary-event class index (see [`vocab::EVENT_CLASSES`]).
    pub event: usize,
    /// Primary-actor position class index (see [`POSITION_NONE`]).
    pub position: usize,
    /// Multi-hot actor-kind presence (`1.0` if any clause has that kind).
    pub presence: [f32; ActorKind::COUNT],
}

impl ClipLabels {
    /// Derives labels from a ground-truth scenario.
    ///
    /// The *primary* event is the first (most salient) actor clause.
    /// Invalid kind/action combinations map to the *none* event — they
    /// cannot occur for scenarios that pass [`Scenario::validate`].
    pub fn from_scenario(s: &Scenario) -> Self {
        let (event, position) = match s.primary_actor() {
            Some(a) => (
                vocab::event_index(a.kind, a.action).unwrap_or(vocab::EVENT_NONE),
                a.position.map_or(POSITION_NONE, |p| p.index()),
            ),
            None => (vocab::EVENT_NONE, POSITION_NONE),
        };
        let mut presence = [0.0; ActorKind::COUNT];
        for a in &s.actors {
            presence[a.kind.index()] = 1.0;
        }
        ClipLabels { ego: s.ego.index(), road: s.road.index(), event, position, presence }
    }

    /// Reassembles an SDL scenario from head predictions.
    ///
    /// This is the decoding used at inference time: the primary clause comes
    /// from the event and position heads; additional presence-only actors
    /// are *not* hallucinated into clauses (precision over recall).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of its head's range.
    pub fn to_scenario(&self) -> Scenario {
        let ego = EgoManeuver::from_index(self.ego);
        let road = RoadKind::from_index(self.road);
        let mut scenario = Scenario::new(ego, road);
        if let Some((kind, action)) = vocab::event_from_index(self.event) {
            let position =
                (self.position < POSITION_NONE).then(|| Position::from_index(self.position));
            scenario.actors.push(tsdx_sdl::ActorClause { kind, action, position });
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_sdl::{ActorAction, ActorClause};

    #[test]
    fn empty_scenario_maps_to_none_classes() {
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        let l = ClipLabels::from_scenario(&s);
        assert_eq!(l.event, vocab::EVENT_NONE);
        assert_eq!(l.position, POSITION_NONE);
        assert_eq!(l.presence, [0.0; 3]);
    }

    #[test]
    fn primary_actor_defines_event_and_position() {
        let s = Scenario::new(EgoManeuver::DecelerateToStop, RoadKind::Intersection)
            .with_actor(ActorClause::at(
                ActorKind::Pedestrian,
                ActorAction::Crossing,
                Position::Right,
            ))
            .with_actor(ActorClause::new(ActorKind::Vehicle, ActorAction::Stopped));
        let l = ClipLabels::from_scenario(&s);
        assert_eq!(
            l.event,
            vocab::event_index(ActorKind::Pedestrian, ActorAction::Crossing).unwrap()
        );
        assert_eq!(l.position, Position::Right.index());
        assert_eq!(l.presence[ActorKind::Pedestrian.index()], 1.0);
        assert_eq!(l.presence[ActorKind::Vehicle.index()], 1.0);
        assert_eq!(l.presence[ActorKind::Cyclist.index()], 0.0);
    }

    #[test]
    fn roundtrip_single_actor_scenario() {
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::CurveLeft)
            .with_actor(ActorClause::at(ActorKind::Vehicle, ActorAction::Leading, Position::Ahead));
        let l = ClipLabels::from_scenario(&s);
        let back = l.to_scenario();
        assert_eq!(back, s);
    }

    #[test]
    fn roundtrip_actorless_scenario() {
        let s = Scenario::new(EgoManeuver::TurnRight, RoadKind::Intersection);
        let l = ClipLabels::from_scenario(&s);
        assert_eq!(l.to_scenario(), s);
    }

    #[test]
    fn decoded_scenarios_are_always_valid() {
        // Every (event, position) pair the heads can emit decodes to valid SDL.
        for event in 0..vocab::EVENT_COUNT {
            for position in 0..POSITION_COUNT {
                let l = ClipLabels { ego: 0, road: 0, event, position, presence: [0.0; 3] };
                l.to_scenario().validate().expect("decoded scenario must validate");
            }
        }
    }
}
