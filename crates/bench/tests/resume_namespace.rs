//! Stage checkpoints are namespaced per experiment binary.
//!
//! Stage tags (`"fit"`, `"joint"`, …) repeat across experiments, so two
//! binaries run with `--resume` from the same working directory used to
//! fight over `results/checkpoints/<tag>.ckpt` and could silently restore
//! each other's half-trained models. These tests pin the namespaced layout
//! and prove that two resumable stages running *concurrently* with the same
//! tag restore only their own state.

use std::path::{Path, PathBuf};

use tsdx_bench::{
    checkpoint_dir, stage_checkpoint_path, stage_checkpoint_path_in, stage_namespace,
};
use tsdx_core::{
    train_resilient, ClipModel, ModelConfig, ResilienceConfig, TrainConfig,
    VideoScenarioTransformer,
};
use tsdx_data::{generate_dataset, Clip, DatasetConfig};
use tsdx_nn::LrSchedule;
use tsdx_render::RenderConfig;

#[test]
fn stage_checkpoints_are_namespaced_per_binary() {
    let a = stage_checkpoint_path_in("table2_extraction", "fit");
    let b = stage_checkpoint_path_in("table3_ablations", "fit");
    assert_ne!(a, b, "same tag in different binaries must not share a checkpoint");
    assert_eq!(a, checkpoint_dir().join("table2_extraction").join("fit.ckpt"));

    // The current binary's path embeds its own namespace and stays stable.
    let here = stage_checkpoint_path("fit");
    assert_eq!(here, stage_checkpoint_path_in(&stage_namespace(), "fit"));
    assert!(here.starts_with(checkpoint_dir()));
    assert!(!stage_namespace().is_empty());
}

#[test]
fn servebench_stage_cannot_cross_restore_other_binaries() {
    // The PR 8 load-test binary trains its service model under the
    // `serve_fit` tag; its checkpoint must live in its own namespace, apart
    // from every training experiment — even one reusing the same tag.
    let serve = stage_checkpoint_path_in("servebench", "serve_fit");
    assert_eq!(serve, checkpoint_dir().join("servebench").join("serve_fit.ckpt"));
    for other in ["table2_extraction", "table3_ablations", "fig3_datasize", "streambench"] {
        assert_ne!(serve, stage_checkpoint_path_in(other, "serve_fit"));
        assert_ne!(serve, stage_checkpoint_path_in(other, "fit"));
        // Distinct namespaces means distinct *directories*, so no future
        // tag collision inside one directory can alias across binaries.
        assert_ne!(serve.parent(), stage_checkpoint_path_in(other, "serve_fit").parent());
    }
}

fn tiny_model(seed: u64) -> VideoScenarioTransformer {
    VideoScenarioTransformer::new(
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            ..ModelConfig::default()
        },
        seed,
    )
}

fn tiny_clips() -> Vec<Clip> {
    generate_dataset(&DatasetConfig {
        n_clips: 8,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    })
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 4,
        schedule: LrSchedule::Constant(1e-3),
        ..TrainConfig::default()
    }
}

fn params_of(model: &VideoScenarioTransformer) -> Vec<(String, Vec<f32>)> {
    model.params().iter().map(|(n, t)| (n.to_string(), t.to_vec())).collect()
}

/// Runs one "stage": trains a fresh model seeded with `seed` against the
/// checkpoint at `path`, exactly as `fit_model` does under `--resume`.
fn run_stage(seed: u64, clips: &[Clip], epochs: usize, path: &Path) -> VideoScenarioTransformer {
    let idx: Vec<usize> = (0..clips.len()).collect();
    let mut model = tiny_model(seed);
    train_resilient(
        &mut model,
        clips,
        &idx,
        &train_cfg(epochs),
        &ResilienceConfig::resume_from(path),
    )
    .unwrap();
    model
}

#[test]
fn concurrent_stages_never_cross_restore() {
    // Two "binaries" (namespaces) run the same stage tag at once. The models
    // differ (seeds 10 and 20), so a shared checkpoint file would make at
    // least one resumed run restore the other's weights.
    let root = std::env::temp_dir().join(format!("tsdx-resume-ns-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let path_for = |ns: &str| -> PathBuf { root.join(stage_checkpoint_path_in(ns, "fit")) };
    let path_a = path_for("expA");
    let path_b = path_for("expB");
    assert_ne!(path_a, path_b);
    for p in [&path_a, &path_b] {
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
    }

    let clips = tiny_clips();

    // Phase 1: both stages train one epoch concurrently, checkpointing.
    std::thread::scope(|s| {
        s.spawn(|| run_stage(10, &clips, 1, &path_a));
        s.spawn(|| run_stage(20, &clips, 1, &path_b));
    });
    assert!(path_a.exists() && path_b.exists());

    // Phase 2: both stages are "re-run after a kill" concurrently, resuming
    // to two epochs. Each must continue from its *own* epoch-1 state.
    let mut resumed: Vec<(u64, VideoScenarioTransformer)> = Vec::new();
    std::thread::scope(|s| {
        let a = s.spawn(|| run_stage(10, &clips, 2, &path_a));
        let b = s.spawn(|| run_stage(20, &clips, 2, &path_b));
        resumed.push((10, a.join().unwrap()));
        resumed.push((20, b.join().unwrap()));
    });

    // Reference: the same stages trained straight through, no interruption.
    for (seed, model) in &resumed {
        let idx: Vec<usize> = (0..clips.len()).collect();
        let mut reference = tiny_model(*seed);
        train_resilient(&mut reference, &clips, &idx, &train_cfg(2), &ResilienceConfig::default())
            .unwrap();
        assert_eq!(
            params_of(model),
            params_of(&reference),
            "stage with seed {seed} did not resume from its own checkpoint"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}
