//! # tsdx-bench
//!
//! The experiment harness regenerating every table and figure of the
//! evaluation (see `DESIGN.md` §4 and `EXPERIMENTS.md`). Each experiment is
//! a binary under `src/bin/`; shared setup lives here.
//!
//! All experiments accept `--quick` to run a reduced-size variant (useful
//! for smoke-testing the harness; the reported numbers in `EXPERIMENTS.md`
//! come from the full settings) and `--resume` to checkpoint every training
//! stage to `results/checkpoints/` and continue from there after a crash or
//! kill (see [`fit_model`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use tsdx_core::{ClipModel, ModelConfig, ResilienceConfig, TrainConfig, VideoScenarioTransformer};
use tsdx_data::{generate_dataset, stratified_split, Clip, DatasetConfig, Split};
use tsdx_nn::LrSchedule;

/// Seed used by every experiment unless stated otherwise.
pub const STD_SEED: u64 = 17;

/// True when `flag` was passed on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// True when `--quick` was passed on the command line.
pub fn is_quick() -> bool {
    has_flag("--quick")
}

/// True when `--resume` was passed on the command line: training stages
/// checkpoint after every epoch and pick up from their last checkpoint, so
/// a killed experiment re-run with the same flags continues (and finished
/// stages are skipped) instead of starting over.
pub fn is_resume() -> bool {
    has_flag("--resume")
}

/// Where `--resume` checkpoints live. Each experiment binary gets its own
/// subdirectory (see [`stage_checkpoint_path`]). Delete this directory to
/// force every experiment to start from scratch.
pub fn checkpoint_dir() -> PathBuf {
    PathBuf::from("results").join("checkpoints")
}

/// The namespace separating this binary's stage checkpoints from every
/// other experiment's: the executable's file stem, or `"unknown"` when the
/// executable path cannot be determined.
pub fn stage_namespace() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `--resume` checkpoint path for stage `tag` of the *current* binary:
/// `results/checkpoints/<binary>/<tag>.ckpt`.
///
/// Stage tags are short names like `"fit"` or `"joint"` and repeat across
/// experiments, so checkpoints are namespaced per binary — without this,
/// `table2_extraction --resume` and `table3_ablations --resume` would
/// restore each other's half-trained models from the same file.
pub fn stage_checkpoint_path(tag: &str) -> PathBuf {
    stage_checkpoint_path_in(&stage_namespace(), tag)
}

/// [`stage_checkpoint_path`] for an explicit namespace (tests use this to
/// simulate several binaries inside one process).
pub fn stage_checkpoint_path_in(namespace: &str, tag: &str) -> PathBuf {
    checkpoint_dir().join(namespace).join(format!("{tag}.ckpt"))
}

/// Standard dataset configuration (32×32 px, 8 frames, mild noise).
pub fn standard_dataset_config(n_clips: usize) -> DatasetConfig {
    DatasetConfig { n_clips, base_seed: STD_SEED, ..DatasetConfig::default() }
}

/// Generates the standard evaluation dataset.
pub fn standard_clips(n_clips: usize) -> Vec<Clip> {
    generate_dataset(&standard_dataset_config(n_clips))
}

/// Standard 70/10/20 stratified split.
pub fn standard_split(clips: &[Clip]) -> Split {
    stratified_split(clips, (0.7, 0.1), STD_SEED)
}

/// Training configuration scaled to the dataset size.
pub fn standard_train_config(epochs: usize, n_train: usize, batch_size: usize) -> TrainConfig {
    let steps_per_epoch = n_train.div_ceil(batch_size) as u32;
    let total = (epochs as u32) * steps_per_epoch;
    TrainConfig {
        epochs,
        batch_size,
        schedule: LrSchedule::WarmupCosine {
            base: 1e-3,
            warmup: (total / 20).max(5),
            total,
            min: 5e-5,
        },
        seed: STD_SEED,
        verbose: true,
        ..TrainConfig::default()
    }
}

/// Materializes the training set selected by `idx`, doubled with
/// horizontal flips (the standard augmentation of the evaluation).
pub fn augmented_train_set(clips: &[Clip], idx: &[usize]) -> Vec<Clip> {
    let selected: Vec<Clip> = idx.iter().map(|&i| clips[i].clone()).collect();
    tsdx_data::augment_with_flips(&selected)
}

/// Trains a fresh video scenario transformer on the flip-augmented
/// `clips[idx]`. `tag` names this stage's `--resume` checkpoint.
pub fn fit_transformer(
    tag: &str,
    cfg: ModelConfig,
    clips: &[Clip],
    idx: &[usize],
    epochs: usize,
) -> VideoScenarioTransformer {
    let mut model = VideoScenarioTransformer::new(cfg, STD_SEED);
    fit_model(tag, &mut model, clips, idx, epochs);
    model
}

/// Trains any [`ClipModel`] in place on the flip-augmented `clips[idx]`
/// with the standard schedule.
///
/// `tag` names this training stage; with `--resume` on the command line the
/// stage checkpoints to `results/checkpoints/<binary>/<tag>.ckpt` (see
/// [`stage_checkpoint_path`]) after every epoch and resumes from it when
/// present, so interrupting and re-running the experiment continues where
/// it stopped (bit-identically). Without `--resume` the stage trains
/// exactly as before and no checkpoint is touched.
pub fn fit_model(
    tag: &str,
    model: &mut dyn ClipModel,
    clips: &[Clip],
    idx: &[usize],
    epochs: usize,
) {
    let train = augmented_train_set(clips, idx);
    let all: Vec<usize> = (0..train.len()).collect();
    let tc = standard_train_config(epochs, all.len(), 16);
    if is_resume() {
        let path = stage_checkpoint_path(tag);
        let dir = path.parent().expect("stage checkpoint path has a directory");
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        eprintln!("  [resume] checkpointing to {}", path.display());
        tsdx_core::train_resilient(model, &train, &all, &tc, &ResilienceConfig::resume_from(&path))
            .unwrap_or_else(|e| panic!("resumable training for {tag} failed: {e}"));
    } else {
        tsdx_core::train(model, &train, &all, &tc);
    }
}

/// Prints a fixed-width table with a title, header row, and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_reads_args() {
        // No --quick in the test harness invocation.
        assert!(!is_quick() || std::env::args().any(|a| a == "--quick"));
    }

    #[test]
    fn standard_split_shapes() {
        let clips = standard_clips(40);
        let split = standard_split(&clips);
        assert_eq!(split.len(), 40);
        assert!(split.train.len() >= 24);
        assert!(!split.test.is_empty());
    }

    #[test]
    fn train_config_schedule_scales_with_steps() {
        let tc = standard_train_config(10, 160, 16);
        match tc.schedule {
            LrSchedule::WarmupCosine { total, .. } => assert_eq!(total, 100),
            other => panic!("unexpected schedule {other:?}"),
        }
    }
}
