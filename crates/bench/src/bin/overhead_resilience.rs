//! Overhead of the fault-tolerance layer (PR 3) on the Table-4 hot paths.
//!
//! Measures (a) the Table-4 batch-8 encoder forward — the only cost the
//! worker-pool panic capture could add to inference — and (b) an A/B of the
//! training loop: plain `train` vs `train_resilient` with the non-finite
//! guard, vs guard plus per-epoch checkpointing. Variants are interleaved
//! round-robin within the same time window so host contention hits all
//! sides equally; medians over rounds are reported as JSON on stdout
//! (recorded in `BENCH_pr3.json`).
//!
//! Run with `cargo run -p tsdx-bench --release --bin overhead_resilience`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_bench::{standard_clips, standard_train_config};
use tsdx_core::{ClipModel, ModelConfig, ResilienceConfig, VideoScenarioTransformer};
use tsdx_nn::{save_train_checkpoint, TrainCheckpoint};
use tsdx_tensor::{Graph, Tensor};

const ROUNDS: usize = 5;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn forward_once(model: &VideoScenarioTransformer, videos: &Tensor) {
    let mut g = Graph::new();
    let p = model.params().bind_frozen(&mut g);
    let mut rng = StdRng::seed_from_u64(0);
    let logits = model.forward(&mut g, &p, videos, &mut rng, false);
    std::hint::black_box(g.value(logits.ego).sum());
}

fn main() {
    let clips = standard_clips(32);
    let idx: Vec<usize> = (0..clips.len()).collect();
    let tc = standard_train_config(1, clips.len(), 16);
    let ckpt_path = std::env::temp_dir().join("tsdx-overhead-resilience.ckpt");

    // One warm-up epoch populates the worker pool and page cache.
    let mut warm = VideoScenarioTransformer::new(ModelConfig::default(), 7);
    tsdx_core::train(&mut warm, &clips, &idx, &tc);

    let clip8 = Tensor::from_fn(&[8, 8, 32, 32], |i| (i % 97) as f32 / 97.0);
    let vt = VideoScenarioTransformer::new(ModelConfig::default(), 0);

    let mut fwd = Vec::new();
    let mut plain = Vec::new();
    let mut guarded = Vec::new();
    let mut guarded_ckpt = Vec::new();
    let mut ckpt_write = Vec::new();
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}...", round + 1);
        fwd.push(time_ms(|| forward_once(&vt, &clip8)));

        // `train` enables the guard by default, so the unguarded baseline
        // goes through `train_resilient` with the guard switched off.
        let unguarded = ResilienceConfig { guard: false, ..ResilienceConfig::default() };
        let mut m = VideoScenarioTransformer::new(ModelConfig::default(), 7);
        plain.push(time_ms(|| {
            tsdx_core::train_resilient(&mut m, &clips, &idx, &tc, &unguarded).expect("train");
        }));

        let mut m = VideoScenarioTransformer::new(ModelConfig::default(), 7);
        guarded.push(time_ms(|| {
            tsdx_core::train_resilient(&mut m, &clips, &idx, &tc, &ResilienceConfig::default())
                .expect("train");
        }));

        let mut m = VideoScenarioTransformer::new(ModelConfig::default(), 7);
        guarded_ckpt.push(time_ms(|| {
            tsdx_core::train_resilient(
                &mut m,
                &clips,
                &idx,
                &tc,
                &ResilienceConfig::checkpoint_to(&ckpt_path),
            )
            .expect("train");
        }));

        // Isolated cost of one atomic checkpoint write (params only — the
        // moments roughly triple the payload; both are reported).
        let ck = TrainCheckpoint::from_params(m.params());
        ckpt_write.push(time_ms(|| save_train_checkpoint(&ck, &ckpt_path).expect("save")));
    }
    std::fs::remove_file(&ckpt_path).ok();

    let fwd = median(&mut fwd);
    let plain = median(&mut plain);
    let guarded = median(&mut guarded);
    let guarded_ckpt = median(&mut guarded_ckpt);
    let ckpt_write = median(&mut ckpt_write);
    println!("{{");
    println!("  \"table4_encoder_forward_batch8_ms\": {fwd:.1},");
    println!("  \"train_epoch_plain_ms\": {plain:.1},");
    println!("  \"train_epoch_guarded_ms\": {guarded:.1},");
    println!("  \"train_epoch_guarded_checkpointed_ms\": {guarded_ckpt:.1},");
    println!("  \"guard_overhead_pct\": {:.2},", (guarded / plain - 1.0) * 100.0);
    println!(
        "  \"guard_plus_checkpoint_overhead_pct\": {:.2},",
        (guarded_ckpt / plain - 1.0) * 100.0
    );
    println!("  \"checkpoint_write_params_only_ms\": {ckpt_write:.2},");
    println!(
        "  \"model_params\": {}",
        VideoScenarioTransformer::new(ModelConfig::default(), 0).num_params()
    );
    println!("}}");
}
