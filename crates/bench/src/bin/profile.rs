//! Self-time profiler for the video scenario transformer (PR 4).
//!
//! Runs instrumented forward/backward training steps at the Table-2 scale
//! (default model, batch 16) with a metrics scope open and prints:
//!
//! - a **self-time table** per kernel/layer span, sorted by self time, with
//!   the share of the end-to-end step wall time each accounts for (the
//!   span nest subtracts child time, so the self column sums to the
//!   instrumented total instead of double-counting);
//! - a **pool table** per named kernel: dispatches, chunks, and the
//!   queue-wait / execution latency distributions;
//! - a **workspace table**: arena hit/miss traffic and megabytes of buffer
//!   recycling per training step, plus process-lifetime totals;
//! - a **stage table** for the inference path latency histograms
//!   (`stage/tubelet_embed` → `stage/encoder` → `stage/heads` →
//!   `stage/decode`);
//! - a **multiplexed-streaming table** comparing one-at-a-time session
//!   service against the cross-stream batched `encode_staged` scheduler
//!   (forwards per tick, groups per forward, amortized µs/group);
//! - an **overhead report** as JSON on stdout (recorded in
//!   `BENCH_pr4.json`): the enabled cost from interleaved A/B rounds, and
//!   the disabled cost computed as measured-calls-per-step × measured
//!   ns-per-disabled-call, which must stay under 1% of a step.
//!
//! Run with `cargo run -p tsdx-bench --release --bin profile` (add
//! `--quick` for a reduced-size smoke run, as in `scripts/check.sh`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_bench::{is_quick, print_table, standard_clips};
use tsdx_core::{multitask_loss, ClipModel, LossWeights, ModelConfig, VideoScenarioTransformer};
use tsdx_data::{collate, Batch};
use tsdx_tensor::{metrics, Graph};

/// One forward/backward training step (no optimizer update — the profile
/// targets the compute path the self-time table must explain).
fn train_step(model: &VideoScenarioTransformer, batch: &Batch, rng: &mut StdRng) {
    let mut g = Graph::new();
    let binding = model.params().bind(&mut g);
    let logits = model.forward(&mut g, &binding, &batch.videos, rng, true);
    let loss = multitask_loss(&mut g, &logits, batch, &LossWeights::default());
    let grads = g.backward(loss);
    std::hint::black_box(model.params().collect_grads(&binding, &grads));
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn main() {
    let quick = is_quick();
    let (batch_size, steps, ab_rounds) = if quick { (4, 2, 3) } else { (16, 4, 5) };

    let clips = standard_clips(batch_size);
    let refs: Vec<&tsdx_data::Clip> = clips.iter().collect();
    let batch = collate(&refs);
    let model = VideoScenarioTransformer::new(ModelConfig::default(), 0);
    let mut rng = StdRng::seed_from_u64(1);

    // Warm-up: worker pool, page cache, lazy env reads.
    train_step(&model, &batch, &mut rng);

    // ---- Profiled phase: `steps` instrumented steps under one scope. ----
    let scope = metrics::scope();
    for _ in 0..steps {
        let _root = metrics::span("step");
        train_step(&model, &batch, &mut rng);
    }
    let snap = scope.snapshot();
    drop(scope);

    // A few inference passes under their own scope populate the stage
    // histograms without mixing into the per-step table above.
    let scope = metrics::scope();
    for _ in 0..2 {
        std::hint::black_box(model.predict(&batch.videos));
    }
    let infer = scope.snapshot();
    drop(scope);

    let root = snap.span("step");
    assert!(root.count == steps as u64, "every step must be spanned");

    // Self-time table: every span except the synthetic root, by self time.
    let mut rows: Vec<(String, metrics::SpanStat)> = snap
        .spans
        .iter()
        .filter(|(k, _)| k.as_str() != "step")
        .map(|(k, s)| (k.clone(), *s))
        .collect();
    rows.sort_by_key(|(_, s)| std::cmp::Reverse(s.self_ns));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(k, s)| {
            vec![
                k.clone(),
                s.count.to_string(),
                ms(s.total_ns),
                ms(s.self_ns),
                format!("{:.1}", s.self_ns as f64 / root.total_ns as f64 * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("self time per kernel/layer ({steps} steps, batch {batch_size})"),
        &["span", "count", "total ms", "self ms", "% of step"],
        &table,
    );

    // Self times of the root's descendants sum to root.total - root.self,
    // so instrumented coverage of the step wall time is:
    let coverage = (root.total_ns - root.self_ns) as f64 / root.total_ns as f64;
    println!(
        "\nself-time table explains {:.1}% of the end-to-end fwd/bwd wall time",
        coverage * 100.0
    );

    // ---- Pool table. ----
    let kernels: Vec<String> = snap
        .counters
        .keys()
        .filter_map(|k| k.strip_prefix("pool/dispatch/").map(str::to_string))
        .collect();
    let pool_rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|k| {
            let exec = snap.hists.get(&format!("pool/exec/{k}")).cloned().unwrap_or_default();
            let wait = snap.hists.get(&format!("pool/queue_wait/{k}")).cloned().unwrap_or_default();
            vec![
                k.clone(),
                snap.counter(&format!("pool/dispatch/{k}")).to_string(),
                snap.counter(&format!("pool/chunks/{k}")).to_string(),
                format!("{:.1}", wait.mean_ns() as f64 / 1e3),
                format!("{:.1}", wait.quantile_ns(0.99) as f64 / 1e3),
                format!("{:.1}", exec.mean_ns() as f64 / 1e3),
                format!("{:.1}", exec.quantile_ns(0.99) as f64 / 1e3),
            ]
        })
        .collect();
    print_table(
        "worker pool per kernel",
        &["kernel", "dispatches", "chunks", "wait µs", "wait p99", "exec µs", "exec p99"],
        &pool_rows,
    );
    if pool_rows.is_empty() {
        println!(
            "(no pooled dispatches: pool size {} — kernels ran inline)",
            tsdx_tensor::pool::num_threads()
        );
    }

    // ---- Workspace arena table. ----
    // Per-step traffic from the profiled scope's counters; lifetime totals
    // from the process-wide stats (includes warm-up and inference passes).
    let (ws_hits, ws_misses, ws_bytes) = tsdx_tensor::workspace::stats();
    let per_step = |c: u64| format!("{:.0}", c as f64 / steps as f64);
    let rate = |h: u64, m: u64| {
        if h + m == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", h as f64 / (h + m) as f64 * 100.0)
        }
    };
    let ws_rows = vec![
        vec![
            "profiled steps".to_string(),
            per_step(snap.counter("workspace/hit")),
            per_step(snap.counter("workspace/miss")),
            rate(snap.counter("workspace/hit"), snap.counter("workspace/miss")),
            format!("{:.2}", snap.counter("workspace/bytes_recycled") as f64 / steps as f64 / 1e6),
        ],
        vec![
            "process lifetime".to_string(),
            ws_hits.to_string(),
            ws_misses.to_string(),
            rate(ws_hits, ws_misses),
            format!("{:.2}", ws_bytes as f64 / 1e6),
        ],
    ];
    print_table(
        "workspace arena (per step / total)",
        &["window", "hits", "misses", "hit %", "MB recycled"],
        &ws_rows,
    );

    // ---- Inference stage table. ----
    let stage_rows: Vec<Vec<String>> = ["tubelet_embed", "encoder", "heads", "decode"]
        .iter()
        .map(|s| {
            let h = infer.hists.get(&format!("stage/{s}")).cloned().unwrap_or_default();
            vec![
                s.to_string(),
                h.count.to_string(),
                format!("{:.2}", h.mean_ns() as f64 / 1e6),
                format!("{:.2}", h.quantile_ns(0.99) as f64 / 1e6),
            ]
        })
        .collect();
    print_table("inference stages", &["stage", "n", "mean ms", "p99 ms"], &stage_rows);

    // ---- Precision plane: which GEMM served each inference product. ----
    // Under `TSDX_PRECISION=int8` the eval bindings route linear layers
    // through the packed i8 GEMM (`dispatch/matmul_i8`), leaving only the
    // activation-side products (attention scores/values) on the f32
    // kernels; under the default f32 dial the i8 row must stay zero.
    let precision = tsdx_core::precision::active();
    let gemm = infer.span("op/matmul");
    let gemm_i8 = infer.span("op/matmul_i8");
    let prec_rows = vec![
        vec![
            "f32 (op/matmul)".to_string(),
            infer.counter("dispatch/matmul_packed").to_string(),
            infer.counter("dispatch/matmul_unpacked").to_string(),
            ms(gemm.self_ns),
        ],
        vec![
            "int8 (op/matmul_i8)".to_string(),
            infer.counter("dispatch/matmul_i8").to_string(),
            "0".to_string(),
            ms(gemm_i8.self_ns),
        ],
    ];
    print_table(
        &format!("inference GEMM dispatch (TSDX_PRECISION={precision})"),
        &["kernel", "packed", "unpacked", "self ms"],
        &prec_rows,
    );
    println!(
        "quantized rows: {} activation rows quantized, {} output rows dequantized",
        infer.counter("quant/quant_rows"),
        infer.counter("quant/dequant_rows"),
    );
    // The packed/unpacked split covers every f32 matmul, and the i8 plane
    // only lights up when the dial asks for it.
    if precision == tsdx_core::precision::Precision::F32 {
        assert_eq!(infer.counter("dispatch/matmul_i8"), 0, "f32 dial must not hit the i8 GEMM");
    } else {
        assert!(infer.counter("dispatch/matmul_i8") > 0, "int8 dial must use the i8 GEMM");
        assert!(infer.counter("quant/dequant_rows") > 0, "i8 GEMM must count dequantized rows");
    }

    // ---- Streaming cache effectiveness. ----
    // A short sliding-window run under its own scope (so its counters stay
    // out of the training-step tables and the coverage assert above): one
    // full window, then a few one-group slides with a repeated describe.
    let scope = metrics::scope();
    let ex = tsdx_core::ScenarioExtractor::new(model.clone());
    let cfg = *ex.model().config();
    let stream_frame = |start: usize, n: usize| {
        tsdx_tensor::Tensor::from_fn(&[n, cfg.height, cfg.width], |i| {
            ((start * cfg.height * cfg.width + i) as f32 * 0.0041).sin() * 0.5
        })
    };
    let mut session = ex.open_stream();
    session.push_frames(&stream_frame(0, cfg.frames)).expect("well-formed feed");
    session.describe().expect("full window");
    let mut fed = cfg.frames;
    let stream_slides = 4usize;
    for _ in 0..stream_slides {
        session.push_frames(&stream_frame(fed, cfg.tubelet_t)).unwrap();
        fed += cfg.tubelet_t;
        session.describe().unwrap();
    }
    session.describe().unwrap(); // unchanged window: served from the memo
    let stream = scope.snapshot();
    drop(scope);

    let (hits, misses, window_hits) = (
        stream.counter("stage/cache_hit"),
        stream.counter("stage/cache_miss"),
        stream.counter("stage/window_hit"),
    );
    let push = stream.hists.get("stage/stream_push").cloned().unwrap_or_default();
    let infer = stream.hists.get("stage/stream_infer").cloned().unwrap_or_default();
    let stream_rows = vec![
        vec![
            "group cache".to_string(),
            hits.to_string(),
            misses.to_string(),
            format!("{:.1}", hits as f64 / (hits + misses).max(1) as f64 * 100.0),
        ],
        vec!["window memo".to_string(), window_hits.to_string(), "-".to_string(), "-".to_string()],
    ];
    print_table(
        &format!(
            "streaming session cache ({} frames/window, {stream_slides} slides + 1 repeat)",
            cfg.frames
        ),
        &["cache", "hits", "misses", "hit %"],
        &stream_rows,
    );
    println!(
        "streamed stages: push {:.2} ms mean x{}, infer {:.2} ms mean x{}",
        push.mean_ns() as f64 / 1e6,
        push.count,
        infer.mean_ns() as f64 / 1e6,
        infer.count,
    );
    let nt = cfg.n_time() as u64;
    // Steady state must reuse all but one group per slide, plus serve the
    // repeated describe entirely from the window memo.
    assert_eq!(misses, nt + stream_slides as u64, "one encode per group, one per slide");
    assert_eq!(
        hits,
        stream_slides as u64 * (nt - 1) + nt,
        "cache must serve every non-fresh group plus the repeated window"
    );
    assert_eq!(window_hits, 1, "repeated describe must hit the window memo");

    // ---- Multiplexed streaming (PR 10). ----
    // N concurrent streams each complete one group per tick. The sequential
    // arm services them one at a time (N batch-1 spatial forwards per
    // tick); the muxed arm stages all N and consumes them through one
    // cross-stream `encode_staged` batched forward per tick. Both arms hit
    // the same `stage/mux_encode` span, so separate scopes keep them apart.
    let mux_streams = 4usize;
    let mux_ticks = if quick { 2 } else { 3 };
    let mux_frame = |s: usize, t: usize| {
        tsdx_tensor::Tensor::from_fn(&[cfg.tubelet_t, cfg.height, cfg.width], |i| {
            ((t * cfg.height * cfg.width + i) as f32 * 0.0041 + s as f32 * 1.618).sin() * 0.5
        })
    };
    // One unmeasured tick per arm first: the muxed batch-N forward has its
    // own workspace shapes, and a cold first allocation would otherwise
    // dominate a short profile run.
    let run_arm = |muxed: bool, ticks: usize| {
        let mut states: Vec<tsdx_core::StreamState> =
            (0..mux_streams).map(|_| tsdx_core::StreamState::new(cfg)).collect();
        for t in 0..ticks {
            for (s, state) in states.iter_mut().enumerate() {
                state.stage_frames(&mux_frame(s, t)).expect("well-formed group");
                if !muxed {
                    state.encode_staged_groups(ex.model());
                }
            }
            if muxed {
                let mut refs: Vec<&mut tsdx_core::StreamState> = states.iter_mut().collect();
                let report = tsdx_core::encode_staged(ex.model(), &mut refs);
                assert_eq!(report.streams, mux_streams, "every stream staged one group");
            }
        }
    };
    run_arm(false, 1);
    run_arm(true, 1);
    let scope = metrics::scope();
    run_arm(false, mux_ticks);
    let seq = scope.snapshot();
    drop(scope);
    let scope = metrics::scope();
    run_arm(true, mux_ticks);
    let mux = scope.snapshot();
    drop(scope);

    let groups = (mux_streams * mux_ticks) as u64;
    let mux_row = |arm: &str, h: &metrics::Histogram| {
        vec![
            arm.to_string(),
            h.count.to_string(),
            format!("{:.1}", groups as f64 / h.count as f64),
            format!("{:.2}", h.mean_ns() as f64 / 1e6),
            format!("{:.1}", h.count as f64 * h.mean_ns() as f64 / groups as f64 / 1e3),
        ]
    };
    let seq_h = seq.hists.get("stage/mux_encode").cloned().unwrap_or_default();
    let mux_h = mux.hists.get("stage/mux_encode").cloned().unwrap_or_default();
    print_table(
        &format!("multiplexed streaming ({mux_streams} streams x {mux_ticks} ticks)"),
        &["scheduler", "forwards", "groups/fwd", "ms/fwd", "µs/group"],
        &[mux_row("sequential", &seq_h), mux_row("muxed", &mux_h)],
    );
    println!(
        "(forwards collapse {mux_streams}x; whether µs/group falls with them is \
         model- and host-dependent — per-forward overhead amortizes, raw compute \
         does not. muxbench asserts the win at the edge-model scale.)"
    );
    // The muxed scheduler's whole point: one forward per tick, not one per
    // stream per tick.
    assert_eq!(seq_h.count, groups, "sequential arm pays one forward per group");
    assert_eq!(mux_h.count, mux_ticks as u64, "muxed arm pays one forward per tick");

    // ---- Overhead: enabled, from interleaved A/B rounds. ----
    let mut off = Vec::new();
    let mut on = Vec::new();
    for _ in 0..ab_rounds {
        let t = Instant::now();
        train_step(&model, &batch, &mut rng);
        off.push(t.elapsed().as_secs_f64() * 1e3);

        let s = metrics::scope();
        let t = Instant::now();
        train_step(&model, &batch, &mut rng);
        on.push(t.elapsed().as_secs_f64() * 1e3);
        drop(s);
    }
    let step_off_ms = median(&mut off);
    let step_on_ms = median(&mut on);

    // ---- Overhead: disabled, calls-per-step × ns-per-disabled-call. ----
    // Direct A/B cannot resolve a <1% effect over host noise, so both
    // factors are measured instead: the call count from the profiled
    // snapshot, the per-call cost from a tight loop with metrics off.
    let calls_per_step = snap.total_records() as f64 / steps as f64;
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        metrics::counter_add("profile/disabled", std::hint::black_box(i));
    }
    let ns_per_call = t.elapsed().as_nanos() as f64 / CALLS as f64;
    let disabled_pct = calls_per_step * ns_per_call / (step_off_ms * 1e6) * 100.0;

    println!();
    println!("{{");
    println!("  \"quick\": {quick},");
    println!("  \"batch_size\": {batch_size},");
    println!("  \"pool_threads\": {},", tsdx_tensor::pool::num_threads());
    println!("  \"model_params\": {},", model.num_params());
    println!("  \"step_ms_metrics_off\": {step_off_ms:.1},");
    println!("  \"step_ms_metrics_on\": {step_on_ms:.1},");
    println!("  \"enabled_overhead_pct\": {:.2},", (step_on_ms / step_off_ms - 1.0) * 100.0);
    println!("  \"instrumentation_calls_per_step\": {calls_per_step:.0},");
    println!("  \"disabled_ns_per_call\": {ns_per_call:.2},");
    println!("  \"disabled_overhead_pct\": {disabled_pct:.4},");
    println!("  \"self_time_coverage_pct\": {:.1}", coverage * 100.0);
    println!("}}");

    // The 90% coverage contract is a table-2-scale claim (measured 96.5%
    // at batch 16). The quick smoke run at batch 4 has materially less
    // instrumented compute per fixed tape-bookkeeping overhead and sits
    // near 90% even on an idle host, so it gets a floor that still catches
    // broken instrumentation (which collapses coverage outright) without
    // flaking on host phase noise.
    let coverage_floor = if quick { 0.85 } else { 0.90 };
    assert!(
        coverage >= coverage_floor,
        "self-time table must explain >= {:.0}% of the step ({:.1}%)",
        coverage_floor * 100.0,
        coverage * 100.0
    );
    assert!(disabled_pct < 1.0, "disabled instrumentation must cost < 1% ({disabled_pct:.3}%)");
}
