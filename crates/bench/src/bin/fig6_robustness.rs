//! **Fig. 6** (extension) — robustness to weather and lighting shift.
//!
//! Trains the transformer on clear daylight clips, then evaluates on the
//! *same held-out scenarios* re-rendered under fog and night. A second
//! model trained with weather augmentation (clear + fog + night variants
//! of every training scenario) shows how much of the degradation is
//! recoverable.
//!
//! Run with `cargo run -p tsdx-bench --release --bin fig6_robustness`.

use tsdx_bench::{is_quick, pct, print_table, standard_dataset_config, standard_split};
use tsdx_core::{evaluate, train, ModelConfig, VideoScenarioTransformer};
use tsdx_data::{generate_dataset, Clip, DatasetConfig};
use tsdx_render::Weather;

/// Regenerates the clips selected by `idx` under a different weather (the
/// scenario sampling is deterministic per index, so only pixels change).
fn rerender(base: &DatasetConfig, idx: &[usize], weather: Weather) -> Vec<Clip> {
    let cfg =
        DatasetConfig { render: tsdx_render::RenderConfig { weather, ..base.render }, ..*base };
    idx.iter().map(|&i| tsdx_data::generate_clip(&cfg, i)).collect()
}

fn fit(clips: &[Clip], epochs: usize, label: &str) -> VideoScenarioTransformer {
    eprintln!("training {label} on {} clips...", clips.len());
    let mut model = VideoScenarioTransformer::new(ModelConfig::default(), tsdx_bench::STD_SEED);
    let idx: Vec<usize> = (0..clips.len()).collect();
    let tc = tsdx_bench::standard_train_config(epochs, clips.len(), 16);
    train(&mut model, clips, &idx, &tc);
    model
}

fn main() {
    let (n, epochs) = if is_quick() { (240, 3) } else { (1000, 8) };
    let base = standard_dataset_config(n);
    eprintln!("generating {n} clear clips...");
    let clear = generate_dataset(&base);
    let split = standard_split(&clear);

    // Clear-only training set.
    let clear_train: Vec<Clip> = split.train.iter().map(|&i| clear[i].clone()).collect();

    // Weather-augmented training set: every training scenario under clear,
    // moderate fog, and night.
    let mut aug_train = clear_train.clone();
    aug_train.extend(rerender(&base, &split.train, Weather::Fog(0.06)));
    aug_train.extend(rerender(&base, &split.train, Weather::Night));

    let clear_model = fit(&clear_train, epochs, "clear-trained");
    let aug_model = fit(&aug_train, epochs, "weather-augmented");

    let conditions = [
        Weather::Clear,
        Weather::Fog(0.03),
        Weather::Fog(0.07),
        Weather::Fog(0.12),
        Weather::Night,
    ];
    let mut rows = Vec::new();
    for weather in conditions {
        let test = rerender(&base, &split.test, weather);
        let idx: Vec<usize> = (0..test.len()).collect();
        let s_clear = evaluate(&clear_model, &test, &idx);
        let s_aug = evaluate(&aug_model, &test, &idx);
        rows.push(vec![
            weather.name(),
            pct(s_clear.mean_accuracy()),
            pct(s_clear.ego_acc),
            pct(s_aug.mean_accuracy()),
            pct(s_aug.ego_acc),
        ]);
    }
    print_table(
        "Fig 6: robustness to weather shift (test split, %)",
        &["condition", "clear-trained mean", "clear ego", "aug-trained mean", "aug ego"],
        &rows,
    );
}
