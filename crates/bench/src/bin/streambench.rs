//! Streaming-session latency benchmark (PR 6).
//!
//! Measures per-window inference latency on a continuous frame feed two
//! ways at several window lengths:
//!
//! - **streamed**: one long-lived `StreamSession` slides over the feed —
//!   each step pushes one new tubelet group and reads out the window's
//!   logits, reusing the cached spatial summaries of every older group;
//! - **full recompute**: a cold session per window (the `extract_checked`
//!   path) re-encodes all `nt` groups from pixels.
//!
//! The claim under test is that streamed per-window cost is **sublinear in
//! window length**: the incremental path pays one group of spatial work
//! plus an O(window) temporal stage, while full recompute pays spatial work
//! for the whole window. So the streamed/full speedup must grow with the
//! window, and streamed latency must grow by clearly less than the window
//! length factor. Cache-effectiveness counters (`stage/cache_hit`,
//! `stage/cache_miss`, `stage/window_hit`) are read from a metrics scope
//! around the streamed phase and printed alongside.
//!
//! Prints a human table plus a JSON report on stdout (recorded in
//! `BENCH_pr6.json`). Run with
//! `cargo run -p tsdx-bench --release --bin streambench` (add `--quick`
//! for the reduced run used by `scripts/check.sh`).

use std::time::Instant;

use tsdx_bench::{is_quick, print_table};
use tsdx_core::{ModelConfig, ScenarioExtractor};
use tsdx_tensor::{metrics, Tensor};

/// Synthetic camera feed: frame `start..start+n` of an endless smoothly
/// varying stream, so no two windows are identical and nothing is
/// trivially cacheable beyond what the session claims.
fn feed(cfg: &ModelConfig, start: usize, frames: usize) -> Tensor {
    let frame = cfg.height * cfg.width;
    Tensor::from_fn(&[frames, cfg.height, cfg.width], |i| {
        ((start * frame + i) as f32 * 0.0041).sin() * 0.5
    })
}

fn median_ms(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

struct WindowResult {
    frames: usize,
    groups: usize,
    stream_ms: f64,
    full_ms: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

fn bench_window(frames: usize, slides: usize) -> WindowResult {
    let cfg = ModelConfig { frames, ..ModelConfig::default() };
    let ex = ScenarioExtractor::untrained(cfg, 0);
    let groups = cfg.n_time();
    let step = cfg.tubelet_t;

    // ---- Streamed: one session slides over the feed. ----
    let mut session = ex.open_stream();
    session.push_frames(&feed(&cfg, 0, frames)).expect("well-formed feed");
    session.logits().expect("full window");
    let mut fed = frames;
    // Warm-up slides (arena, pool, page cache).
    for _ in 0..2 {
        session.push_frames(&feed(&cfg, fed, step)).unwrap();
        fed += step;
        session.logits().unwrap();
    }
    let scope = metrics::scope();
    let mut stream = Vec::with_capacity(slides);
    for _ in 0..slides {
        let t = Instant::now();
        session.push_frames(&feed(&cfg, fed, step)).unwrap();
        fed += step;
        std::hint::black_box(session.logits().unwrap());
        stream.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let snap = scope.snapshot();
    drop(scope);
    let (hits, misses) = (snap.counter("stage/cache_hit"), snap.counter("stage/cache_miss"));

    // ---- Full recompute: a cold session per window, same windows. ----
    let mut start = frames;
    for _ in 0..2 {
        let mut cold = ex.open_stream();
        cold.push_frames(&feed(&cfg, start, frames)).unwrap();
        cold.logits().unwrap();
        start += step;
    }
    let mut full = Vec::with_capacity(slides);
    for _ in 0..slides {
        let mut cold = ex.open_stream();
        let t = Instant::now();
        cold.push_frames(&feed(&cfg, start, frames)).unwrap();
        start += step;
        std::hint::black_box(cold.logits().unwrap());
        full.push(t.elapsed().as_secs_f64() * 1e3);
    }

    WindowResult {
        frames,
        groups,
        stream_ms: median_ms(&mut stream),
        full_ms: median_ms(&mut full),
        hits,
        misses,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    }
}

fn main() {
    let quick = is_quick();
    let (windows, slides): (&[usize], usize) =
        if quick { (&[8, 16], 5) } else { (&[8, 16, 32], 15) };

    let results: Vec<WindowResult> = windows.iter().map(|&f| bench_window(f, slides)).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.frames.to_string(),
                r.groups.to_string(),
                format!("{:.2}", r.stream_ms),
                format!("{:.2}", r.full_ms),
                format!("{:.2}", r.full_ms / r.stream_ms),
                format!("{:.1}", r.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("per-window inference latency, streamed vs full recompute ({slides} slides)"),
        &["frames", "groups", "stream ms", "full ms", "speedup", "cache hit %"],
        &rows,
    );

    // Sublinearity: growing the window by KxK must grow streamed latency by
    // well under K (only the temporal stage scales), while full recompute
    // scales with the window. Checked between the smallest and largest
    // measured windows.
    let (a, z) = (&results[0], &results[results.len() - 1]);
    let window_factor = z.frames as f64 / a.frames as f64;
    let stream_factor = z.stream_ms / a.stream_ms;
    println!(
        "\nwindow {}x{} -> streamed latency x{:.2} (window grew x{:.0}); \
         speedup {:.2}x -> {:.2}x",
        a.frames,
        z.frames,
        stream_factor,
        window_factor,
        a.full_ms / a.stream_ms,
        z.full_ms / z.stream_ms,
    );
    assert!(
        stream_factor < window_factor * 0.75,
        "streamed per-window latency is no longer sublinear in window length: \
         x{stream_factor:.2} for a x{window_factor:.0} window"
    );
    for r in &results {
        assert!(
            r.full_ms > r.stream_ms,
            "streaming must beat full recompute at {} frames: {:.2}ms vs {:.2}ms",
            r.frames,
            r.stream_ms,
            r.full_ms
        );
        // Steady state recomputes exactly one group per slide.
        assert!(
            r.misses == slides as u64,
            "expected {} cache misses (one per slide) at {} frames, saw {}",
            slides,
            r.frames,
            r.misses
        );
        assert!(
            r.hits == (slides * (r.groups - 1)) as u64,
            "expected {} cache hits at {} frames, saw {}",
            slides * (r.groups - 1),
            r.frames,
            r.hits
        );
    }

    // JSON report (recorded in BENCH_pr6.json).
    println!("\n{{");
    println!(" \"streambench\": {{");
    println!("  \"slides\": {slides},");
    println!("  \"windows\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        println!(
            "   {{\"frames\": {}, \"groups\": {}, \"stream_ms\": {:.3}, \"full_ms\": {:.3}, \
             \"speedup\": {:.2}, \"cache_hit_rate\": {:.3}}}{comma}",
            r.frames,
            r.groups,
            r.stream_ms,
            r.full_ms,
            r.full_ms / r.stream_ms,
            r.hit_rate
        );
    }
    println!("  ],");
    println!(
        "  \"sublinear\": {{\"window_factor\": {window_factor:.2}, \
         \"stream_latency_factor\": {stream_factor:.2}}}"
    );
    println!(" }}");
    println!("}}");
}
