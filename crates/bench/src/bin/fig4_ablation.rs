//! **Fig. 4** — architecture ablations at equal parameter budget:
//! factorized vs joint space-time attention × CLS vs mean-pool readout.
//!
//! Reports test accuracy, analytic MACs per clip, parameter counts, and
//! measured single-clip inference latency. Expected shape: factorized
//! attention matches joint accuracy within noise at materially fewer MACs;
//! readout choice is a wash at this scale.
//!
//! Run with `cargo run -p tsdx-bench --release --bin fig4_ablation`.

use std::time::Instant;

use tsdx_bench::{fit_transformer, is_quick, pct, print_table, standard_clips, standard_split};
use tsdx_core::{clip_macs, evaluate, AttentionKind, ModelConfig, Readout};

fn main() {
    let (n, epochs) = if is_quick() { (300, 4) } else { (1200, 10) };
    eprintln!("generating {n} clips...");
    let clips = standard_clips(n);
    let split = standard_split(&clips);

    let variants = [
        ("factorized + cls", AttentionKind::Factorized, Readout::Cls),
        ("factorized + meanpool", AttentionKind::Factorized, Readout::MeanPool),
        ("joint + cls", AttentionKind::Joint, Readout::Cls),
        ("joint + meanpool", AttentionKind::Joint, Readout::MeanPool),
    ];

    let mut rows = Vec::new();
    for (name, attention, readout) in variants {
        let cfg = ModelConfig { attention, readout, ..ModelConfig::default() };
        eprintln!("training {name}...");
        let model = fit_transformer(
            &format!("fig4-{}", name.replace(" + ", "-")),
            cfg,
            &clips,
            &split.train,
            epochs,
        );
        let s = evaluate(&model, &clips, &split.test);

        // Measured single-clip inference latency (median of 20).
        let video = clips[split.test[0]].video.reshape(&[1, cfg.frames, cfg.height, cfg.width]);
        let mut times: Vec<f64> = (0..20)
            .map(|_| {
                let t = Instant::now();
                let _ = model.predict(&video);
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let latency = times[times.len() / 2];

        rows.push(vec![
            name.to_string(),
            format!("{:.0}k", model.num_params() as f32 / 1000.0),
            format!("{:.1}M", clip_macs(&cfg) as f64 / 1e6),
            format!("{latency:.1}"),
            pct(s.mean_accuracy()),
            pct(s.ego_acc),
            pct(s.event_acc),
        ]);
    }
    print_table(
        "Fig 4: attention/readout ablation (test split)",
        &["variant", "params", "MACs/clip", "latency ms", "mean %", "ego %", "event %"],
        &rows,
    );
}
