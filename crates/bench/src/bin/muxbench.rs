//! Multiplexed-streaming throughput benchmark (PR 10).
//!
//! N concurrent camera feeds each push one tubelet group per tick and read
//! out their window. Two schedulers serve the same tick:
//!
//! - **sequential**: sessions are serviced one at a time — each stream's
//!   group is encoded in its own spatial forward (batch 1), the pre-PR-10
//!   serving model;
//! - **muxed**: every stream's group is staged first, then all N groups
//!   are encoded in **one** cross-stream batched spatial forward
//!   (`tsdx_core::encode_staged`).
//!
//! Both schedulers then do identical per-stream window readouts (temporal
//! stage + heads, KV-cached); the readout is per-stream in either world,
//! so the phases are timed separately. The claim under test is the
//! tentpole's: **per-group amortized encode cost falls with stream
//! count** — one batched forward amortizes per-forward overhead (graph
//! build, parameter binding, dispatch of batch-1 kernels) that N solo
//! forwards each pay in full. The bench asserts ≥1.5× per-stream
//! *group-encode* throughput at 8 streams over sequential service
//! (relaxed to ≥1.15× under `--quick`, whose short runs sit inside this
//! single-core host's scheduler noise), and that muxed per-group cost at
//! 8 streams undercuts the 1-stream cost. Full-tick (encode + readout)
//! rates are reported alongside, unasserted. The two schedulers run
//! interleaved, round by round, so host drift hits both arms equally.
//! Parity is not re-proven here (`streaming_parity.rs` pins it bit-for-bit);
//! a spot check still compares one muxed stream against a solo replay.
//!
//! A second phase drives a real `tsdx-serve` server with N concurrent HTTP
//! streams and reports the `/stats` cross-stream batch-occupancy histogram
//! — evidence the mixed queue coalesces group encodes under live
//! concurrent load, not just in the core harness.
//!
//! Prints a human table plus a JSON report on stdout (recorded in
//! `BENCH_pr10.json`). Run with
//! `cargo run -p tsdx-bench --release --bin muxbench` (add `--quick` for
//! the reduced run used by `scripts/check.sh`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use tsdx_bench::{is_quick, print_table};
use tsdx_core::{encode_staged, ModelConfig, ScenarioExtractor, StreamState};
use tsdx_serve::{Server, ServerConfig};
use tsdx_tensor::Tensor;

/// A small edge-style model: per-group compute is modest, so the fixed
/// per-forward overhead the mux scheduler amortizes is a visible share of
/// each solo encode — the regime where cross-stream batching pays on a
/// serial host. (On parallel hosts batching additionally wins by filling
/// the pool across the batch dimension.)
fn bench_cfg() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

/// One group of frames for stream `s` at tick `t` — distinct per stream so
/// nothing is accidentally shared.
fn group(cfg: &ModelConfig, s: usize, t: usize) -> Tensor {
    let frame = cfg.height * cfg.width;
    Tensor::from_fn(&[cfg.tubelet_t, cfg.height, cfg.width], |i| {
        ((t * frame + i) as f32 * 0.0041 + s as f32 * 1.618).sin() * 0.5
    })
}

struct MuxResult {
    streams: usize,
    /// Median stage+encode phase per tick, ms.
    seq_encode_ms: f64,
    mux_encode_ms: f64,
    /// Median readout phase per tick, ms (same work in both worlds).
    seq_read_ms: f64,
    mux_read_ms: f64,
}

impl MuxResult {
    /// Per-stream group-encode throughput, pushes/s (one push per stream
    /// per tick, so the per-stream rate is the tick rate).
    fn seq_encode_rate(&self) -> f64 {
        1e3 / self.seq_encode_ms
    }
    fn mux_encode_rate(&self) -> f64 {
        1e3 / self.mux_encode_ms
    }
    /// Per-stream full-tick throughput (encode + readout), pushes/s.
    fn seq_tick_rate(&self) -> f64 {
        1e3 / (self.seq_encode_ms + self.seq_read_ms)
    }
    fn mux_tick_rate(&self) -> f64 {
        1e3 / (self.mux_encode_ms + self.mux_read_ms)
    }
    /// Amortized µs per group in the muxed encode phase.
    fn mux_us_per_group(&self) -> f64 {
        self.mux_encode_ms * 1e3 / self.streams as f64
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Runs `ticks` measured ticks of N streams under both schedulers,
/// interleaved round by round, and reports per-phase medians.
fn bench_streams(ex: &ScenarioExtractor, n: usize, ticks: usize) -> MuxResult {
    let cfg = *ex.model().config();
    let model = ex.model();
    let warmup = 2 + cfg.n_time(); // fill every window, warm arena + pool

    let mut seq_states: Vec<StreamState> = (0..n).map(|_| StreamState::new(cfg)).collect();
    let mut mux_states: Vec<StreamState> = (0..n).map(|_| StreamState::new(cfg)).collect();
    let (mut seq_e, mut seq_r) = (Vec::with_capacity(ticks), Vec::with_capacity(ticks));
    let (mut mux_e, mut mux_r) = (Vec::with_capacity(ticks), Vec::with_capacity(ticks));

    for t in 0..warmup + ticks {
        // ---- Sequential: each stream encodes its own group, batch 1. ----
        let t0 = Instant::now();
        for (s, state) in seq_states.iter_mut().enumerate() {
            state.stage_frames(&group(&cfg, s, t)).expect("well-formed group");
            state.encode_staged_groups(model);
        }
        let e = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for state in seq_states.iter_mut() {
            if state.ready() {
                std::hint::black_box(state.logits(model).expect("ready stream"));
            }
        }
        let r = t1.elapsed().as_secs_f64() * 1e3;
        if t >= warmup {
            seq_e.push(e);
            seq_r.push(r);
        }

        // ---- Muxed: stage all N, one batched encode. ----
        let t0 = Instant::now();
        for (s, state) in mux_states.iter_mut().enumerate() {
            state.stage_frames(&group(&cfg, s, t)).expect("well-formed group");
        }
        let mut refs: Vec<&mut StreamState> = mux_states.iter_mut().collect();
        let report = encode_staged(model, &mut refs);
        assert_eq!(report.streams, n, "every stream staged one group");
        let e = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for state in mux_states.iter_mut() {
            if state.ready() {
                std::hint::black_box(state.logits(model).expect("ready stream"));
            }
        }
        let r = t1.elapsed().as_secs_f64() * 1e3;
        if t >= warmup {
            mux_e.push(e);
            mux_r.push(r);
        }
    }

    // Spot-check: the muxed scheduler's answer matches a solo replay of the
    // same frames (full parity is pinned by streaming_parity.rs).
    let mut solo = StreamState::new(cfg);
    for t in 0..warmup + ticks {
        solo.stage_frames(&group(&cfg, 0, t)).unwrap();
        solo.encode_staged_groups(model);
    }
    assert_eq!(
        solo.describe(model).unwrap(),
        mux_states[0].describe(model).unwrap(),
        "muxed stream 0 must match its solo replay"
    );

    MuxResult {
        streams: n,
        seq_encode_ms: median(&mut seq_e),
        mux_encode_ms: median(&mut mux_e),
        seq_read_ms: median(&mut seq_r),
        mux_read_ms: median(&mut mux_r),
    }
}

/// Phase 2: N real HTTP streams against a live server; returns the final
/// `/stats` body (occupancy histogram included).
fn http_phase(n: usize, pushes: usize) -> String {
    let cfg = bench_cfg();
    let server = Server::start(ScenarioExtractor::untrained(cfg, 0), ServerConfig::default())
        .expect("bind bench server");
    let addr = server.local_addr();
    let mut server = server;

    let workers: Vec<_> = (0..n)
        .map(|s| {
            std::thread::spawn(move || {
                let cfg = bench_cfg();
                let mut client = HttpClient::connect(addr);
                let body = client.request("POST", "/sessions", &[], &[]);
                let id: u64 = parse_field(&body, "session");
                for t in 0..pushes {
                    let chunk = group(&cfg, s, t);
                    let bytes: Vec<u8> =
                        chunk.data().iter().flat_map(|f| f.to_le_bytes()).collect();
                    let shape = format!("{}x{}x{}", cfg.tubelet_t, cfg.height, cfg.width);
                    let resp = client.request(
                        "POST",
                        &format!("/sessions/{id}/frames"),
                        &[("content-type", "application/octet-stream"), ("x-video-shape", &shape)],
                        &bytes,
                    );
                    assert!(resp.contains("\"groups_new\":1"), "stream {s} push {t}: {resp}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("HTTP stream worker");
    }
    let stats = HttpClient::connect(addr).request("GET", "/stats", &[], &[]);
    server.shutdown();
    stats
}

/// A minimal blocking keep-alive HTTP/1.1 client (body-only responses).
struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    fn connect(addr: std::net::SocketAddr) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        HttpClient { reader, writer: stream }
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> String {
        let mut req = format!("{method} {path} HTTP/1.1\r\nhost: bench\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.writer.write_all(req.as_bytes()).expect("write head");
        self.writer.write_all(body).expect("write body");
        self.writer.flush().expect("flush");
        // Status line + headers.
        let mut len = 0usize;
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h).expect("header line");
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    len = v.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("body");
        String::from_utf8_lossy(&body).into_owned()
    }
}

/// Extracts `"name":<u64>` from a flat JSON body.
fn parse_field(body: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = body.find(&key).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {body}"))
}

fn main() {
    let quick = is_quick();
    let (stream_counts, ticks, http_pushes): (&[usize], usize, usize) =
        if quick { (&[1, 4, 8], 15, 4) } else { (&[1, 4, 8, 16], 60, 12) };

    let ex = ScenarioExtractor::untrained(bench_cfg(), 0);
    let results: Vec<MuxResult> =
        stream_counts.iter().map(|&n| bench_streams(&ex, n, ticks)).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.streams.to_string(),
                format!("{:.0}", r.seq_encode_ms * 1e3 / r.streams as f64),
                format!("{:.0}", r.mux_us_per_group()),
                format!("{:.0}", r.seq_encode_rate()),
                format!("{:.0}", r.mux_encode_rate()),
                format!("{:.2}", r.mux_encode_rate() / r.seq_encode_rate()),
                format!("{:.2}", r.mux_tick_rate() / r.seq_tick_rate()),
            ]
        })
        .collect();
    print_table(
        &format!("multiplexed vs sequential streaming, {ticks} interleaved ticks/arm"),
        &[
            "streams",
            "seq us/group",
            "mux us/group",
            "seq enc push/s",
            "mux enc push/s",
            "enc speedup",
            "tick speedup",
        ],
        &rows,
    );

    // The tentpole claims: (1) per-group amortized encode cost falls as
    // streams share a forward; (2) at 8 concurrent streams the batched
    // scheduler sustains >= 1.5x the per-stream group-encode rate of
    // one-at-a-time service.
    let at1 = results.iter().find(|r| r.streams == 1).expect("1-stream row");
    let at8 = results.iter().find(|r| r.streams == 8).expect("8-stream row");
    let speedup = at8.mux_encode_rate() / at8.seq_encode_rate();
    let floor = if quick { 1.15 } else { 1.5 };
    println!(
        "\nper-group amortized encode cost: {:.0}us at 1 stream -> {:.0}us at 8 streams",
        at1.mux_us_per_group(),
        at8.mux_us_per_group(),
    );
    println!(
        "group-encode throughput at 8 streams: {:.0} -> {:.0} push/s/stream \
         ({speedup:.2}x, floor {floor}x); full-tick {:.2}x",
        at8.seq_encode_rate(),
        at8.mux_encode_rate(),
        at8.mux_tick_rate() / at8.seq_tick_rate(),
    );
    assert!(
        at8.mux_us_per_group() < at1.mux_us_per_group(),
        "amortized per-group cost must fall with stream count: {:.0}us at 1 vs {:.0}us at 8",
        at1.mux_us_per_group(),
        at8.mux_us_per_group()
    );
    assert!(
        speedup >= floor,
        "cross-stream batching must buy >= {floor}x per-stream encode throughput \
         at 8 streams, got {speedup:.2}x"
    );

    // Phase 2: the same coalescing observed end-to-end over HTTP.
    let http_streams = *stream_counts.last().expect("nonempty");
    let stats = http_phase(http_streams, http_pushes);
    let occupancy = stats
        .find("\"occupancy\":{")
        .map(|at| {
            let rest = &stats[at + "\"occupancy\":".len()..];
            let end = rest.find('}').map_or(rest.len(), |e| e + 1);
            rest[..end].to_string()
        })
        .expect("stats carries the occupancy histogram");
    let mux_batches = parse_field(&stats, "batches");
    let stream_pushes = parse_field(&stats, "stream_pushes");
    println!(
        "\nHTTP phase: {http_streams} streams x {http_pushes} pushes -> \
         stream_pushes={stream_pushes}, occupancy={occupancy}"
    );
    assert_eq!(stream_pushes as usize, http_streams * http_pushes, "no push lost or dropped");
    // Coalescing over HTTP is scheduling-dependent (clients race the
    // worker), so multi-stream rounds are reported, not asserted.
    if !occupancy.contains("\"1\":0") && mux_batches == stream_pushes {
        println!("note: every HTTP round held a single stream (workers never overlapped)");
    }

    // JSON report (recorded in BENCH_pr10.json).
    println!("\n{{");
    println!(" \"muxbench\": {{");
    println!("  \"ticks\": {ticks},");
    println!("  \"streams\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        println!(
            "   {{\"streams\": {}, \"seq_encode_ms\": {:.4}, \"mux_encode_ms\": {:.4}, \
             \"seq_read_ms\": {:.4}, \"mux_read_ms\": {:.4}, \"mux_us_per_group\": {:.1}, \
             \"encode_speedup\": {:.3}, \"tick_speedup\": {:.3}}}{comma}",
            r.streams,
            r.seq_encode_ms,
            r.mux_encode_ms,
            r.seq_read_ms,
            r.mux_read_ms,
            r.mux_us_per_group(),
            r.mux_encode_rate() / r.seq_encode_rate(),
            r.mux_tick_rate() / r.seq_tick_rate(),
        );
    }
    println!("  ],");
    println!("  \"encode_speedup_at_8_streams\": {speedup:.3},");
    println!(
        "  \"http\": {{\"streams\": {http_streams}, \"pushes_per_stream\": {http_pushes}, \
         \"stream_pushes\": {stream_pushes}, \"mux_batches\": {mux_batches}, \
         \"occupancy\": {occupancy}}}"
    );
    println!(" }}");
    println!("}}");
}
