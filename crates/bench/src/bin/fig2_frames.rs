//! **Fig. 2** — accuracy vs number of input frames (temporal ablation).
//!
//! Regenerates the dataset at each frame count T ∈ {2, 4, 8, 16} (same
//! scenarios, same seed — only the temporal sampling changes), trains the
//! transformer at matching configuration, and reports test accuracy. The
//! expected shape: accuracy rises with T until the behaviors' temporal
//! horizon is covered, then saturates.
//!
//! Run with `cargo run -p tsdx-bench --release --bin fig2_frames`.

use tsdx_bench::{fit_transformer, is_quick, pct, print_table, standard_split};
use tsdx_core::{evaluate, ModelConfig};
use tsdx_data::{generate_dataset, DatasetConfig};
use tsdx_render::RenderConfig;

fn main() {
    let (n, epochs) = if is_quick() { (240, 4) } else { (900, 10) };
    let mut rows = Vec::new();
    for frames in [2usize, 4, 8, 16] {
        eprintln!("T = {frames}: generating {n} clips...");
        let cfg = DatasetConfig {
            n_clips: n,
            base_seed: tsdx_bench::STD_SEED,
            render: RenderConfig { frames, ..RenderConfig::default() },
            ..DatasetConfig::default()
        };
        let clips = generate_dataset(&cfg);
        let split = standard_split(&clips);
        let model_cfg = ModelConfig {
            frames,
            tubelet_t: if frames >= 4 { 2 } else { 1 },
            ..ModelConfig::default()
        };
        eprintln!("T = {frames}: training...");
        let model =
            fit_transformer(&format!("fig2-vt-t{frames}"), model_cfg, &clips, &split.train, epochs);
        let s = evaluate(&model, &clips, &split.test);
        rows.push(vec![
            frames.to_string(),
            pct(s.ego_acc),
            pct(s.event_acc),
            pct(s.road_acc),
            pct(s.position_acc),
            pct(s.mean_accuracy()),
        ]);
    }
    print_table(
        "Fig 2: accuracy vs input frames (test split, %)",
        &["frames", "ego", "event", "road", "pos", "mean"],
        &rows,
    );
}
