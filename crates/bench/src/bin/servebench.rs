//! Load-test harness for the extraction server (PR 8).
//!
//! Boots an in-process [`tsdx_serve::Server`] and drives it over real TCP
//! sockets with synthetic concurrent clients, one phase per robustness
//! claim:
//!
//! 1. **Steady state** — well-behaved clients; records end-to-end p50/p99
//!    and the mean coalesced batch size.
//! 2. **Overload** — far more concurrent demand than a deliberately tiny
//!    queue can hold; asserts every request gets a *typed* outcome (200 or
//!    a retryable 429/503 shed), that sheds actually happen, that accepted
//!    requests stay within their deadline at p99, and that nothing is
//!    accepted-then-dropped (`accepted == completed` on exit).
//! 3. **Degrade** — pressure past the degrade threshold; reports how many
//!    batches the valve flipped to the int8 plane.
//! 4. **Faults** — slow-writer clients (stall mid-request) and aborting
//!    clients (vanish mid-body); asserts the listener keeps serving.
//! 5. **Drain** — a graceful shutdown racing a request burst; asserts every
//!    admitted request was answered.
//!
//! The model is trained in-process first (stage tag `serve_fit`), so with
//! `--resume` the checkpoint lands in the `servebench` namespace
//! (`results/checkpoints/servebench/serve_fit.ckpt`) and can never
//! cross-restore another experiment's stages.
//!
//! Run with `cargo run -p tsdx-bench --release --bin servebench` (add
//! `--quick` for a reduced variant).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use tsdx_bench::{fit_model, is_quick, print_table};
use tsdx_core::{ModelConfig, ScenarioExtractor, VideoScenarioTransformer};
use tsdx_data::{generate_dataset, DatasetConfig};
use tsdx_render::RenderConfig;
use tsdx_serve::{BatchConfig, Server, ServerConfig};

/// The bench model: small enough that a request is milliseconds, so
/// queueing dynamics (not raw FLOPs) dominate what we measure.
fn bench_model_config() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

/// One valid clip body, as raw f32 LE bytes for the octet-stream fast path.
fn clip_bytes(seed: usize) -> Vec<u8> {
    (0..4 * 16 * 16)
        .map(|i| ((i + seed * 131) % 97) as f32 / 97.0)
        .flat_map(|f| f.to_le_bytes())
        .collect()
}

/// Sends one `POST /v1/extract` and returns `(status, latency)`.
fn post_clip(
    addr: SocketAddr,
    body: &[u8],
    deadline_ms: Option<u64>,
) -> std::io::Result<(u16, Duration)> {
    let t0 = Instant::now();
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut req = String::from("POST /v1/extract HTTP/1.1\r\nhost: bench\r\n");
    req.push_str("content-type: application/octet-stream\r\nx-video-shape: 4x16x16\r\n");
    if let Some(ms) = deadline_ms {
        req.push_str(&format!("x-deadline-ms: {ms}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\nconnection: close\r\n\r\n", body.len()));
    let mut w = stream.try_clone()?;
    w.write_all(req.as_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let status: u16 =
        line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad status: {line:?}"))
        })?;
    Ok((status, t0.elapsed()))
}

/// A GET that only cares about the status.
fn get_status(addr: SocketAddr, path: &str) -> std::io::Result<u16> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut w = stream.try_clone()?;
    w.write_all(format!("GET {path} HTTP/1.1\r\nhost: b\r\nconnection: close\r\n\r\n").as_bytes())?;
    w.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))
}

fn quantile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

struct PhaseOutcome {
    ok: usize,
    shed_429: usize,
    shed_503: usize,
    other: usize,
    latencies_us: Vec<u64>,
}

/// `clients` threads each fire `reqs` requests as fast as they can.
fn hammer(addr: SocketAddr, clients: usize, reqs: usize, deadline_ms: Option<u64>) -> PhaseOutcome {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut results = Vec::with_capacity(reqs);
                for r in 0..reqs {
                    let body = clip_bytes(c * 1000 + r);
                    results.push(post_clip(addr, &body, deadline_ms));
                }
                results
            })
        })
        .collect();
    let mut out =
        PhaseOutcome { ok: 0, shed_429: 0, shed_503: 0, other: 0, latencies_us: Vec::new() };
    for h in handles {
        for result in h.join().expect("client thread") {
            match result {
                Ok((200, lat)) => {
                    out.ok += 1;
                    out.latencies_us.push(lat.as_micros() as u64);
                }
                Ok((429, _)) => out.shed_429 += 1,
                Ok((503, _)) => out.shed_503 += 1,
                Ok((status, _)) => {
                    eprintln!("unexpected status {status}");
                    out.other += 1;
                }
                Err(e) => {
                    eprintln!("client error: {e}");
                    out.other += 1;
                }
            }
        }
    }
    out.latencies_us.sort_unstable();
    out
}

fn start_server(extractor: ScenarioExtractor, batch: BatchConfig) -> Server {
    Server::start(
        extractor,
        ServerConfig {
            batch,
            max_connections: 128,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind bench server")
}

fn main() {
    let quick = is_quick();

    // ---- Train the model the service fronts (namespaced stage). ----
    let clips = generate_dataset(&DatasetConfig {
        n_clips: if quick { 8 } else { 24 },
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    });
    let idx: Vec<usize> = (0..clips.len()).collect();
    let mut model = VideoScenarioTransformer::new(bench_model_config(), tsdx_bench::STD_SEED);
    fit_model("serve_fit", &mut model, &clips, &idx, if quick { 1 } else { 2 });
    let extractor = || ScenarioExtractor::new(model.clone());

    let (steady_clients, steady_reqs) = if quick { (3, 6) } else { (6, 12) };
    let (storm_clients, storm_reqs) = if quick { (12, 6) } else { (24, 10) };

    // ---- Phase 1: steady state. ----
    let mut server = start_server(extractor(), BatchConfig::default());
    let addr = server.local_addr();
    let steady = hammer(addr, steady_clients, steady_reqs, Some(10_000));
    let steady_stats = server.stats();
    let steady_batches = steady_stats.batches.load(Ordering::Relaxed);
    let steady_clips_total = steady_stats.batched_clips.load(Ordering::Relaxed);
    let mean_batch =
        if steady_batches > 0 { steady_clips_total as f64 / steady_batches as f64 } else { 0.0 };
    let steady_p50 = quantile_ms(&steady.latencies_us, 0.50);
    let steady_p99 = quantile_ms(&steady.latencies_us, 0.99);
    server.shutdown();
    assert_eq!(
        steady.ok,
        steady_clients * steady_reqs,
        "steady-state requests must all succeed ({} of {} did)",
        steady.ok,
        steady_clients * steady_reqs
    );

    // ---- Phase 2: overload a deliberately tiny queue. ----
    let overload_deadline_ms = 2_000u64;
    let mut server = start_server(
        extractor(),
        BatchConfig { queue_capacity: 4, max_batch: 2, degrade_depth: None, precision: None },
    );
    let addr = server.local_addr();
    let storm = hammer(addr, storm_clients, storm_reqs, Some(overload_deadline_ms));
    let stats = server.stats();
    let storm_accepted = stats.accepted.load(Ordering::Relaxed);
    let storm_completed = stats.completed.load(Ordering::Relaxed);
    let storm_shed_deadline = stats.shed_deadline.load(Ordering::Relaxed);
    let storm_p99 = quantile_ms(&storm.latencies_us, 0.99);
    server.shutdown();
    let storm_total = storm_clients * storm_reqs;
    assert_eq!(storm.other, 0, "overload must produce only 200/429/503 outcomes");
    assert!(
        storm.shed_429 + storm.shed_503 > 0,
        "an overloaded 4-slot queue must shed typed 429/503s"
    );
    assert_eq!(
        storm.ok + storm.shed_429 + storm.shed_503,
        storm_total,
        "every overload request must get a typed answer"
    );
    // Sheds answered 503 before the forward count as answered, not dropped.
    assert_eq!(
        storm_accepted,
        storm_completed + storm_shed_deadline,
        "admitted requests must be answered, never dropped \
         (accepted={storm_accepted} completed={storm_completed} shed={storm_shed_deadline})"
    );
    assert!(
        storm_p99 <= overload_deadline_ms as f64 * 1.5,
        "p99 of accepted requests ({storm_p99:.1} ms) must stay near the \
         {overload_deadline_ms} ms deadline — load must shed, not queue"
    );

    // ---- Phase 3: pressure past the degrade threshold. ----
    let mut server = start_server(
        extractor(),
        BatchConfig { queue_capacity: 64, max_batch: 4, degrade_depth: Some(3), precision: None },
    );
    let addr = server.local_addr();
    let degrade = hammer(addr, storm_clients, storm_reqs.min(6), Some(10_000));
    let stats = server.stats();
    let degraded_batches = stats.batches_degraded.load(Ordering::Relaxed);
    let total_batches = stats.batches.load(Ordering::Relaxed);
    server.shutdown();

    // ---- Phase 4: fault-injected clients. ----
    let mut server = start_server(extractor(), BatchConfig::default());
    let addr = server.local_addr();
    let n_faulty = if quick { 4 } else { 8 };
    let fault_threads: Vec<_> = (0..n_faulty)
        .map(|i| {
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    // Slow writer: half a request, then a stall the server's
                    // 500 ms read timeout must bound.
                    let stream = TcpStream::connect(addr)?;
                    let mut w = stream.try_clone()?;
                    w.write_all(b"POST /v1/extract HTTP/1.1\r\nhost: s")?;
                    w.flush()?;
                    std::thread::sleep(Duration::from_millis(800));
                    // Server answered 408 and closed, or just closed.
                    let mut buf = Vec::new();
                    let mut r = stream;
                    r.set_read_timeout(Some(Duration::from_secs(5)))?;
                    let _ = r.read_to_end(&mut buf);
                    Ok::<_, std::io::Error>(())
                } else {
                    // Aborter: declares a body, sends a fragment, vanishes.
                    let stream = TcpStream::connect(addr)?;
                    let mut w = stream.try_clone()?;
                    w.write_all(
                        b"POST /v1/extract HTTP/1.1\r\nhost: a\r\n\
                          content-type: application/octet-stream\r\n\
                          x-video-shape: 4x16x16\r\ncontent-length: 4096\r\n\r\nfragment",
                    )?;
                    w.flush()?;
                    stream.shutdown(Shutdown::Both)?;
                    Ok(())
                }
            })
        })
        .collect();
    // Honest traffic interleaved with the faulty clients must still land.
    let during = hammer(addr, 3, 4, Some(10_000));
    for t in fault_threads {
        t.join().expect("fault client thread").expect("fault client io");
    }
    let healthz_after = get_status(addr, "/healthz").expect("listener must survive faults");
    server.shutdown();
    assert_eq!(healthz_after, 200, "listener must answer health checks after faulty clients");
    assert_eq!(during.ok, 3 * 4, "honest requests must complete while faulty clients misbehave");

    // ---- Phase 5: graceful drain under fire. ----
    let mut server = start_server(extractor(), BatchConfig::default());
    let addr = server.local_addr();
    let burst: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                post_clip(addr, &clip_bytes(i), Some(10_000)).map(|(s, _)| s)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(15));
    server.shutdown();
    let drain_statuses: Vec<u16> =
        burst.into_iter().map(|t| t.join().unwrap().expect("drain client io")).collect();
    let stats = server.stats();
    let drain_accepted = stats.accepted.load(Ordering::Relaxed);
    let drain_completed = stats.completed.load(Ordering::Relaxed);
    for s in &drain_statuses {
        assert!(*s == 200 || *s == 503, "drain outcome must be 200 or 503, got {s}");
    }
    assert_eq!(
        drain_accepted, drain_completed,
        "graceful shutdown must answer every admitted request"
    );
    let drained_ok = drain_statuses.iter().filter(|&&s| s == 200).count();

    // ---- Report. ----
    print_table(
        &format!(
            "servebench ({}x{} steady, {}x{} storm{})",
            steady_clients,
            steady_reqs,
            storm_clients,
            storm_reqs,
            if quick { ", quick" } else { "" }
        ),
        &["phase", "ok", "429", "503", "p50 ms", "p99 ms"],
        &[
            vec![
                "steady".into(),
                steady.ok.to_string(),
                steady.shed_429.to_string(),
                steady.shed_503.to_string(),
                format!("{steady_p50:.1}"),
                format!("{steady_p99:.1}"),
            ],
            vec![
                "overload".into(),
                storm.ok.to_string(),
                storm.shed_429.to_string(),
                storm.shed_503.to_string(),
                format!("{:.1}", quantile_ms(&storm.latencies_us, 0.5)),
                format!("{storm_p99:.1}"),
            ],
            vec![
                "degrade".into(),
                degrade.ok.to_string(),
                degrade.shed_429.to_string(),
                degrade.shed_503.to_string(),
                format!("{:.1}", quantile_ms(&degrade.latencies_us, 0.5)),
                format!("{:.1}", quantile_ms(&degrade.latencies_us, 0.99)),
            ],
        ],
    );

    println!();
    println!("{{");
    println!("  \"quick\": {quick},");
    println!("  \"steady_ok\": {},", steady.ok);
    println!("  \"steady_p50_ms\": {steady_p50:.2},");
    println!("  \"steady_p99_ms\": {steady_p99:.2},");
    println!("  \"steady_mean_batch\": {mean_batch:.2},");
    println!("  \"overload_total\": {storm_total},");
    println!("  \"overload_ok\": {},", storm.ok);
    println!("  \"overload_shed_429\": {},", storm.shed_429);
    println!("  \"overload_shed_503\": {},", storm.shed_503);
    println!("  \"overload_p99_ms\": {storm_p99:.2},");
    println!("  \"overload_deadline_ms\": {overload_deadline_ms},");
    println!("  \"overload_accepted\": {storm_accepted},");
    println!("  \"overload_completed\": {storm_completed},");
    println!("  \"overload_shed_deadline\": {storm_shed_deadline},");
    println!("  \"degrade_batches_total\": {total_batches},");
    println!("  \"degrade_batches_int8\": {degraded_batches},");
    println!("  \"fault_clients\": {n_faulty},");
    println!("  \"fault_honest_ok\": {},", during.ok);
    println!("  \"fault_healthz_after\": {healthz_after},");
    println!("  \"drain_ok\": {drained_ok},");
    println!("  \"drain_accepted\": {drain_accepted},");
    println!("  \"drain_completed\": {drain_completed}");
    println!("}}");
}
