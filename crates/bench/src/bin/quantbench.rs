//! Int8-vs-f32 inference A/B harness (PR 7).
//!
//! Measures the quantized inference plane against the f32 packed path, in
//! one process so both sides see identical host conditions:
//!
//! - **Per-shape GEMM A/B** on every linear-layer shape of the table-4
//!   batch-8 encoder forward (default model, 8 clips): the f32 packed
//!   `matmul + bias` against [`tsdx_tensor::quant::linear_q8`] on prepacked
//!   weights. This is the PR's acceptance gate: every shape must come in
//!   at ≥ 1.5×.
//! - **End-to-end A/B** via [`tsdx_core::precision::with_forced`]:
//!   batch-8 `predict`, single-clip `extract_checked`, and a steady-state
//!   streaming slide. These are reported honestly: the encoder also spends
//!   time in attention products, layer norms, and GELU/residual work that
//!   stays f32 by design, so end-to-end gains are smaller than per-GEMM
//!   gains (the observed split is recorded in `BENCH_pr7.json`).
//! - **Accuracy probe**: max absolute logit delta between the planes on a
//!   synthetic clip (the epsilon gate proper lives in
//!   `crates/core/tests/quant_accuracy.rs`).
//!
//! Run with `cargo run -p tsdx-bench --release --bin quantbench` (add
//! `--quick` for fewer repetitions).

use std::time::Instant;

use tsdx_bench::{is_quick, print_table, standard_clips};
use tsdx_core::precision::{self, Precision};
use tsdx_core::{ModelConfig, ScenarioExtractor};
use tsdx_data::collate;
use tsdx_tensor::quant::QuantMatrix;
use tsdx_tensor::{ops, quant, Tensor};

/// Median of `reps` timed runs of `f`, in microseconds.
fn median_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // untimed warm-up: page faults and lazy init are not steady state
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let quick = is_quick();
    let reps = if quick { 9 } else { 25 };

    // ---- Per-shape GEMM A/B: the table-4 batch-8 linear shapes. ----
    // Default model, batch 8: the spatial encoder flattens 8 clips x 4
    // temporal groups x (16 patches + CLS) = 544 token rows of width 64;
    // the temporal encoder sees 8 x (4 groups + CLS) = 40 rows; the heads
    // read 8 CLS rows.
    let shapes: [(&str, usize, usize, usize); 5] = [
        ("spatial_qkvo_544x64x64", 544, 64, 64),
        ("spatial_fc1_544x64x128", 544, 64, 128),
        ("spatial_fc2_544x128x64", 544, 128, 64),
        ("temporal_qkvo_40x64x64", 40, 64, 64),
        ("heads_8x64x64", 8, 64, 64),
    ];
    let mut gemm_rows = Vec::new();
    let mut gemm_json = Vec::new();
    let mut min_speedup = f64::MAX;
    for (name, m, k, n) in shapes {
        let a = Tensor::from_fn(&[m, k], |i| ((i % 97) as f32 - 48.0) / 31.0);
        let w = Tensor::from_fn(&[k, n], |i| ((i % 89) as f32 - 44.0) / 47.0);
        let bias = Tensor::from_fn(&[n], |i| i as f32 * 0.01 - 0.2);
        let q = QuantMatrix::quantize(&w);
        let f32_us = median_us(reps, || {
            std::hint::black_box(ops::add(&ops::matmul(&a, &w), &bias));
        });
        let i8_us = median_us(reps, || {
            std::hint::black_box(quant::linear_q8(&a, &q, Some(&bias)));
        });
        let speedup = f32_us / i8_us;
        min_speedup = min_speedup.min(speedup);
        gemm_rows.push(vec![
            name.to_string(),
            format!("{f32_us:.1}"),
            format!("{i8_us:.1}"),
            format!("{speedup:.2}x"),
        ]);
        gemm_json.push(format!(
            "  \"{name}\": {{\"f32_us\": {f32_us:.1}, \"int8_us\": {i8_us:.1}, \"speedup\": {speedup:.2}}}"
        ));
    }
    print_table(
        &format!("packed f32 linear vs int8 linear ({reps} reps, medians)"),
        &["shape (m x k x n)", "f32 us", "int8 us", "speedup"],
        &gemm_rows,
    );

    // ---- End-to-end A/B under the forced precision dial. ----
    let ex = ScenarioExtractor::untrained(ModelConfig::default(), 0);
    let report = ex.quantize(); // prepack once; steady state never re-packs
    let model = ex.model();
    let clips = standard_clips(8);
    let refs: Vec<&tsdx_data::Clip> = clips.iter().collect();
    let batch = collate(&refs);
    let cfg = *model.config();
    let video =
        Tensor::from_fn(&[cfg.frames, cfg.height, cfg.width], |i| (i as f32 * 0.0041).sin() * 0.5);

    let e2e_reps = if quick { 5 } else { 15 };
    let timed = |p: Precision, f: &mut dyn FnMut()| {
        precision::with_forced(p, || median_us(e2e_reps, &mut *f))
    };
    let predict_f32 = timed(Precision::F32, &mut || {
        std::hint::black_box(model.predict(&batch.videos));
    });
    let predict_i8 = timed(Precision::Int8, &mut || {
        std::hint::black_box(model.predict(&batch.videos));
    });
    let extract_f32 = timed(Precision::F32, &mut || {
        std::hint::black_box(ex.extract_checked(&video).expect("well-formed"));
    });
    let extract_i8 = timed(Precision::Int8, &mut || {
        std::hint::black_box(ex.extract_checked(&video).expect("well-formed"));
    });

    // Steady-state streaming slide: one new tubelet group per describe.
    let slide = |p: Precision| {
        precision::with_forced(p, || {
            let mut session = ex.open_stream();
            let frame = |start: usize, n: usize| {
                Tensor::from_fn(&[n, cfg.height, cfg.width], |i| {
                    ((start * cfg.height * cfg.width + i) as f32 * 0.003).sin() * 0.5
                })
            };
            session.push_frames(&frame(0, cfg.frames)).expect("well-formed");
            session.describe().expect("full window");
            let mut fed = cfg.frames;
            median_us(e2e_reps, || {
                session.push_frames(&frame(fed, cfg.tubelet_t)).expect("well-formed");
                fed += cfg.tubelet_t;
                std::hint::black_box(session.describe().expect("full window"));
            })
        })
    };
    let slide_f32 = slide(Precision::F32);
    let slide_i8 = slide(Precision::Int8);

    let e2e_rows = vec![
        vec![
            "batch-8 predict".into(),
            format!("{predict_f32:.0}"),
            format!("{predict_i8:.0}"),
            format!("{:.2}x", predict_f32 / predict_i8),
        ],
        vec![
            "extract_checked (1 clip)".into(),
            format!("{extract_f32:.0}"),
            format!("{extract_i8:.0}"),
            format!("{:.2}x", extract_f32 / extract_i8),
        ],
        vec![
            "stream slide (1 group)".into(),
            format!("{slide_f32:.0}"),
            format!("{slide_i8:.0}"),
            format!("{:.2}x", slide_f32 / slide_i8),
        ],
    ];
    print_table(
        &format!("end-to-end f32 vs int8 ({e2e_reps} reps, medians, us)"),
        &["path", "f32 us", "int8 us", "speedup"],
        &e2e_rows,
    );

    // ---- Accuracy probe: worst logit movement on one clip. ----
    let logits = |p: Precision| {
        precision::with_forced(p, || {
            let mut s = ex.open_stream();
            s.push_frames(&video).expect("well-formed");
            let l = s.logits().expect("full window");
            [l.ego, l.road, l.event, l.position, l.presence]
                .iter()
                .flat_map(|t| t.to_vec())
                .collect::<Vec<f32>>()
        })
    };
    let (lf, li) = (logits(Precision::F32), logits(Precision::Int8));
    let max_delta = lf.iter().zip(&li).map(|(a, b)| (a - b).abs()).fold(0f32, f32::max);

    println!();
    println!("{{");
    println!("  \"quick\": {quick},");
    println!("  \"quantized_matrices\": {},", report.matrices);
    println!("  \"packed_kib\": {},", report.packed_bytes / 1024);
    println!("{},", gemm_json.join(",\n"));
    println!("  \"min_gemm_speedup\": {min_speedup:.2},");
    println!("  \"batch8_predict_f32_us\": {predict_f32:.0},");
    println!("  \"batch8_predict_int8_us\": {predict_i8:.0},");
    println!("  \"extract_f32_us\": {extract_f32:.0},");
    println!("  \"extract_int8_us\": {extract_i8:.0},");
    println!("  \"stream_slide_f32_us\": {slide_f32:.0},");
    println!("  \"stream_slide_int8_us\": {slide_i8:.0},");
    println!("  \"max_logit_delta\": {max_delta:.4}");
    println!("}}");

    // The acceptance gate: every table-4 batch-8 linear shape >= 1.5x.
    assert!(
        min_speedup >= 1.5,
        "int8 GEMM must beat the packed f32 path by >= 1.5x on every \
         table-4 batch-8 shape (worst: {min_speedup:.2}x)"
    );
    assert!(max_delta.is_finite(), "int8 logits must stay finite");
}
