//! **Table 1** — dataset statistics: clips per scenario class, label
//! marginals, split sizes.
//!
//! Run with `cargo run -p tsdx-bench --release --bin table1_dataset`
//! (`--quick` for a 300-clip variant).

use tsdx_bench::{is_quick, pct, print_table, standard_clips, standard_split};
use tsdx_data::DatasetStats;

fn main() {
    let n = if is_quick() { 300 } else { 3000 };
    eprintln!("generating {n} clips (seed {})...", tsdx_bench::STD_SEED);
    let clips = standard_clips(n);
    let stats = DatasetStats::compute(&clips);
    let split = standard_split(&clips);

    println!("{stats}");

    let rows = vec![
        vec![
            "train".to_string(),
            split.train.len().to_string(),
            pct(split.train.len() as f32 / n as f32),
        ],
        vec![
            "val".to_string(),
            split.val.len().to_string(),
            pct(split.val.len() as f32 / n as f32),
        ],
        vec![
            "test".to_string(),
            split.test.len().to_string(),
            pct(split.test.len() as f32 / n as f32),
        ],
    ];
    print_table("Table 1b: stratified split", &["part", "clips", "%"], &rows);
}
