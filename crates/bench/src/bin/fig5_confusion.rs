//! **Fig. 5** — ego-maneuver confusion matrix of the trained transformer.
//!
//! Run with `cargo run -p tsdx-bench --release --bin fig5_confusion`.

use tsdx_bench::{fit_transformer, is_quick, standard_clips, standard_split};
use tsdx_core::{predict_labels, ModelConfig};
use tsdx_metrics::ConfusionMatrix;
use tsdx_sdl::{vocab, EgoManeuver};

fn main() {
    let (n, epochs) = if is_quick() { (300, 4) } else { (1500, 25) };
    eprintln!("generating {n} clips...");
    let clips = standard_clips(n);
    let split = standard_split(&clips);
    eprintln!("training video-transformer...");
    let model = fit_transformer(
        "fig5-video-transformer",
        ModelConfig::default(),
        &clips,
        &split.train,
        epochs,
    );

    let predictions = predict_labels(&model, &clips, &split.test);
    let truths: Vec<usize> = split.test.iter().map(|&i| clips[i].labels.ego).collect();
    let preds: Vec<usize> = predictions.iter().map(|l| l.ego).collect();

    let mut ego_cm = ConfusionMatrix::with_names(
        EgoManeuver::ALL.iter().map(|m| m.as_str().to_string()).collect(),
    );
    ego_cm.record_all(&truths, &preds);
    println!("\n== Fig 5a: ego-maneuver confusion (rows = truth) ==");
    println!("{ego_cm}");
    println!("overall ego accuracy: {:.1}%", ego_cm.accuracy() * 100.0);

    // Event confusion as the companion panel.
    let t_event: Vec<usize> = split.test.iter().map(|&i| clips[i].labels.event).collect();
    let p_event: Vec<usize> = predictions.iter().map(|l| l.event).collect();
    let mut event_cm =
        ConfusionMatrix::with_names((0..vocab::EVENT_COUNT).map(vocab::event_name).collect());
    event_cm.record_all(&t_event, &p_event);
    println!("\n== Fig 5b: primary-event confusion (rows = truth) ==");
    println!("{event_cm}");
    println!("overall event accuracy: {:.1}%", event_cm.accuracy() * 100.0);
}
