//! **Fig. 3** — accuracy vs training-set size (data efficiency).
//!
//! Trains the video transformer and the CNN+GRU baseline on nested subsets
//! of the training split and evaluates on a fixed test set. Expected shape:
//! both improve with data; the transformer dominates (or matches within
//! noise at the smallest size) with no crossover.
//!
//! Run with `cargo run -p tsdx-bench --release --bin fig3_datasize`.

use tsdx_baselines::{CnnGru, CnnGruConfig};
use tsdx_bench::{
    fit_model, fit_transformer, is_quick, pct, print_table, standard_clips, standard_split,
};
use tsdx_core::{evaluate, ModelConfig};

fn main() {
    let (n, sizes, epochs): (usize, Vec<usize>, usize) = if is_quick() {
        (400, vec![50, 100, 200], 4)
    } else {
        (1600, vec![100, 300, 600, 1100], 10)
    };
    eprintln!("generating {n} clips...");
    let clips = standard_clips(n);
    let split = standard_split(&clips);

    let mut rows = Vec::new();
    for &size in &sizes {
        let subset: Vec<usize> = split.train.iter().copied().take(size).collect();
        assert!(subset.len() == size, "training split too small for size {size}");

        eprintln!("n_train = {size}: training video-transformer...");
        let vt = fit_transformer(
            &format!("fig3-vt-n{size}"),
            ModelConfig::default(),
            &clips,
            &subset,
            epochs,
        );
        let s_vt = evaluate(&vt, &clips, &split.test);

        eprintln!("n_train = {size}: training cnn-gru...");
        let mut gru = CnnGru::new(CnnGruConfig::default(), tsdx_bench::STD_SEED);
        fit_model(&format!("fig3-cnn-gru-n{size}"), &mut gru, &clips, &subset, epochs);
        let s_gru = evaluate(&gru, &clips, &split.test);

        rows.push(vec![
            size.to_string(),
            pct(s_vt.mean_accuracy()),
            pct(s_gru.mean_accuracy()),
            pct(s_vt.ego_acc),
            pct(s_gru.ego_acc),
        ]);
    }
    print_table(
        "Fig 3: accuracy vs training-set size (test split, %)",
        &["n_train", "vt mean", "gru mean", "vt ego", "gru ego"],
        &rows,
    );
}
