//! **Table 3** — scenario-level quality and retrieval.
//!
//! Evaluates complete assembled SDL descriptions (exact match, mean
//! similarity) and scenario retrieval: each test clip's *predicted* SDL
//! queries a gallery of ground-truth descriptions; a gallery item is
//! relevant when its ego, road, and primary event all match the query
//! clip's truth. Ground-truth queries give the retrieval ceiling.
//!
//! Run with `cargo run -p tsdx-bench --release --bin table3_scenario`.

use tsdx_bench::{fit_transformer, is_quick, pct, print_table, standard_clips, standard_split};
use tsdx_core::{ModelConfig, ScenarioExtractor};
use tsdx_data::Clip;
use tsdx_metrics::{mean_average_precision, mean_precision_at_k, scenario_report};
use tsdx_sdl::{embed, Scenario};

/// Relevance: same ego maneuver, road kind, and primary event class.
fn relevant(a: &Scenario, b: &Scenario) -> bool {
    let ev = |s: &Scenario| s.primary_actor().map(|c| (c.kind, c.action));
    a.ego == b.ego && a.road == b.road && ev(a) == ev(b)
}

fn retrieval_rows(
    queries: &[Scenario],
    query_truths: &[Scenario],
    gallery: &[Scenario],
    skip_self: bool,
) -> (f32, f32) {
    let gallery_emb: Vec<Vec<f32>> = gallery.iter().map(embed).collect();
    let mut q = Vec::new();
    for (i, (pred, truth)) in queries.iter().zip(query_truths).enumerate() {
        let qe = embed(pred);
        let mut scores = Vec::with_capacity(gallery.len());
        let mut rel = Vec::with_capacity(gallery.len());
        for (j, ge) in gallery_emb.iter().enumerate() {
            if skip_self && i == j {
                continue;
            }
            scores.push(tsdx_sdl::cosine(&qe, ge));
            rel.push(relevant(truth, &gallery[j]));
        }
        q.push((scores, rel));
    }
    (mean_average_precision(&q), mean_precision_at_k(&q, 5))
}

fn main() {
    let (n, epochs) = if is_quick() { (300, 4) } else { (1500, 25) };
    eprintln!("generating {n} clips...");
    let clips = standard_clips(n);
    let split = standard_split(&clips);

    eprintln!("training video-transformer...");
    let model = fit_transformer(
        "table3-video-transformer",
        ModelConfig::default(),
        &clips,
        &split.train,
        epochs,
    );
    let extractor = ScenarioExtractor::new(model);

    let test_clips: Vec<Clip> = split.test.iter().map(|&i| clips[i].clone()).collect();
    let truths: Vec<Scenario> = test_clips.iter().map(|c| c.truth.clone()).collect();
    eprintln!("extracting {} descriptions...", test_clips.len());
    let predictions = extractor.extract_batch(&test_clips);

    // Scenario-level report.
    let report = scenario_report(&predictions, &truths);
    print_table(
        "Table 3a: scenario-level quality (test split)",
        &["metric", "value (%)"],
        &[
            vec!["exact match".into(), pct(report.exact_match)],
            vec!["mean SDL similarity".into(), pct(report.mean_similarity)],
            vec!["ego slot accuracy".into(), pct(report.ego_accuracy)],
            vec!["road slot accuracy".into(), pct(report.road_accuracy)],
        ],
    );

    // Retrieval: predicted queries vs ground-truth ceiling.
    let (map_pred, p5_pred) = retrieval_rows(&predictions, &truths, &truths, true);
    let (map_gt, p5_gt) = retrieval_rows(&truths, &truths, &truths, true);
    print_table(
        "Table 3b: scenario retrieval over the test gallery",
        &["query source", "mAP (%)", "P@5 (%)"],
        &[
            vec!["predicted SDL".into(), pct(map_pred), pct(p5_pred)],
            vec!["ground-truth SDL (ceiling)".into(), pct(map_gt), pct(p5_gt)],
        ],
    );

    // A few qualitative extractions.
    println!("\n-- sample extractions --");
    for (p, t) in predictions.iter().zip(&truths).take(5) {
        println!("truth: {t}");
        println!(" pred: {p}\n");
    }
}
