//! Scale benchmark for the sharded SDL vector index (PR 9).
//!
//! Builds a [`tsdx_index::VectorIndex`] over synthetic SDL descriptions
//! (1M at full size; `--quick` shrinks it for CI) and measures:
//!
//! 1. **Build** — scenarios embedded and pushed per second.
//! 2. **Persistence** — shard save and verified load throughput, plus a
//!    round-trip identity check.
//! 3. **Query** — brute-force top-10 QPS over the whole index.
//! 4. **Recall@K** — the dot-product scan against an exact [`cosine`]
//!    full-sort reference; asserted `>= 0.99` (the PR 9 acceptance bar).
//! 5. **Determinism** — top-k answers bit-identical across forced pool
//!    sizes 1/2/4 and across shard capacities, asserted in-process.
//!
//! Run with `cargo run -p tsdx-bench --release --bin indexbench` (add
//! `--quick` for the reduced variant; `scripts/check.sh` does).

use std::time::Instant;

use rand::{rngs::StdRng, Rng, SeedableRng};
use tsdx_bench::{is_quick, print_table, STD_SEED};
use tsdx_index::{IndexConfig, VectorIndex};
use tsdx_sdl::{
    cosine, embed, rank_order, vocab, ActorClause, EgoManeuver, Position, RoadKind, Scenario,
    MAX_ACTORS,
};
use tsdx_tensor::pool;

const K: usize = 10;

/// One random taxonomy-valid scenario. Hand-rolled rather than
/// `tsdx_sim::ScenarioSampler` because the bench needs millions of cheap
/// descriptions, not physically plausible trajectories.
fn random_scenario(rng: &mut StdRng) -> Scenario {
    let ego = EgoManeuver::from_index(rng.random_range(0..EgoManeuver::COUNT));
    let road = RoadKind::from_index(rng.random_range(0..RoadKind::COUNT));
    let n_actors = rng.random_range(0..=MAX_ACTORS);
    let actors = (0..n_actors)
        .map(|_| {
            let (kind, action) =
                vocab::EVENT_CLASSES[rng.random_range(0..vocab::EVENT_CLASSES.len())];
            let position = if rng.random_bool(0.5) {
                Some(Position::from_index(rng.random_range(0..Position::COUNT)))
            } else {
                None
            };
            ActorClause { kind, action, position }
        })
        .collect();
    Scenario { ego, actors, road }
}

fn bits(hits: &[(u64, f32)]) -> Vec<(u64, u32)> {
    hits.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

/// Exact reference: full scan with the general-input [`cosine`] (recomputed
/// norms), full sort. Agreement with the index's unit-norm dot scan is the
/// recall claim.
fn exact_scan(index: &VectorIndex, q: &[f32], k: usize) -> Vec<(u64, f32)> {
    let mut scored: Vec<(u64, f32)> =
        (0..index.len()).map(|id| (id, cosine(q, index.row(id).expect("dense ids")))).collect();
    scored.sort_by(rank_order::<u64>);
    scored.truncate(k);
    scored
}

fn main() {
    let quick = is_quick();
    let n: usize = if quick { 20_000 } else { 1_000_000 };
    let n_queries: usize = if quick { 50 } else { 200 };
    let n_recall: usize = if quick { 16 } else { 32 };
    let shard_capacity = if quick { 4_096 } else { 65_536 };

    let mut rng = StdRng::seed_from_u64(STD_SEED);

    // -- Build ------------------------------------------------------------
    let t0 = Instant::now();
    let mut index = VectorIndex::new(IndexConfig { shard_capacity, ..IndexConfig::default() });
    for _ in 0..n {
        index.push_scenario(&random_scenario(&mut rng)).expect("EMBED_DIM index");
    }
    let build_s = t0.elapsed().as_secs_f64();
    let build_rate = n as f64 / build_s;
    assert_eq!(index.len() as usize, n);

    // -- Persistence ------------------------------------------------------
    let dir = std::env::temp_dir().join(format!("tsdx-indexbench-{}", std::process::id()));
    let t0 = Instant::now();
    index.save_to(&dir).expect("save shards");
    let save_s = t0.elapsed().as_secs_f64();
    let bytes: u64 = std::fs::read_dir(&dir)
        .expect("read shard dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum();
    let t0 = Instant::now();
    let loaded = VectorIndex::load(&dir).expect("load shards");
    let load_s = t0.elapsed().as_secs_f64();
    assert_eq!(loaded.len(), index.len());
    std::fs::remove_dir_all(&dir).ok();
    let mb = bytes as f64 / (1024.0 * 1024.0);

    // -- Queries ----------------------------------------------------------
    let queries: Vec<Vec<f32>> =
        (0..n_queries).map(|_| embed(&random_scenario(&mut rng))).collect();
    let t0 = Instant::now();
    let mut hit_count = 0usize;
    for q in &queries {
        hit_count += index.query(q, K).expect("query").len();
    }
    let query_s = t0.elapsed().as_secs_f64();
    let qps = n_queries as f64 / query_s;
    assert_eq!(hit_count, n_queries * K.min(n));

    // -- Recall@K vs exact cosine scan ------------------------------------
    // Two views. Strict recall counts exact id overlap with the reference
    // top-k — but synthetic corpora put the k boundary inside large classes
    // of (near-)tied scores, where dot and cosine legitimately round
    // near-equal candidates in different orders. Tie-aware recall (the
    // standard ANN formulation) counts a returned id as correct when its
    // *reference* score is at least the exact k-th best, within float
    // epsilon: returning a different but equally similar scenario is not a
    // retrieval error. The acceptance bar is on the tie-aware number.
    let mut strict_sum = 0.0f64;
    let mut recall_sum = 0.0f64;
    for q in queries.iter().take(n_recall) {
        let got = index.query(q, K).expect("query");
        let want = exact_scan(&index, q, K);
        let want_ids: Vec<u64> = want.iter().map(|h| h.0).collect();
        let kth = want.last().expect("k >= 1").1;
        strict_sum += got.iter().filter(|h| want_ids.contains(&h.0)).count() as f64 / K as f64;
        let good = got
            .iter()
            .filter(|h| cosine(q, index.row(h.0).expect("dense ids")) >= kth - 1e-6)
            .count();
        recall_sum += good as f64 / K as f64;
    }
    let strict_recall = strict_sum / n_recall as f64;
    let recall = recall_sum / n_recall as f64;
    assert!(recall >= 0.99, "recall@{K} = {recall:.4} fell below the 0.99 acceptance bar");

    // -- Determinism: pool sizes and shard capacities ----------------------
    let parity_q = &queries[0];
    let reference = index.query(parity_q, K).expect("query");
    for threads in [1usize, 2, 4] {
        let answer =
            pool::with_forced_threads(threads, || index.query(parity_q, K).expect("query"));
        assert_eq!(bits(&answer), bits(&reference), "pool size {threads} diverged");
    }
    let mut resharded = VectorIndex::new(IndexConfig {
        shard_capacity: shard_capacity / 8 + 1,
        ..IndexConfig::default()
    });
    let parity_n = n.min(10_000);
    for id in 0..parity_n as u64 {
        resharded.push(index.row(id).expect("dense ids")).expect("same dim");
    }
    let mut small = VectorIndex::new(IndexConfig { shard_capacity, ..IndexConfig::default() });
    for id in 0..parity_n as u64 {
        small.push(index.row(id).expect("dense ids")).expect("same dim");
    }
    assert_eq!(
        bits(&resharded.query(parity_q, K).expect("query")),
        bits(&small.query(parity_q, K).expect("query")),
        "shard capacity changed the answer"
    );

    // -- Report -----------------------------------------------------------
    print_table(
        &format!("indexbench ({} descriptions, k={K})", n),
        &["metric", "value"],
        &[
            vec!["build rate".into(), format!("{:.0} scenarios/s", build_rate)],
            vec!["index size".into(), format!("{:.1} MiB in {} shards", mb, index.shard_count())],
            vec!["save".into(), format!("{:.1} MiB/s", mb / save_s)],
            vec!["load+verify".into(), format!("{:.1} MiB/s", mb / load_s)],
            vec!["query p=1".into(), format!("{:.1} QPS ({:.2} ms/query)", qps, 1e3 / qps)],
            vec![
                format!("recall@{K}"),
                format!(
                    "{recall:.4} tie-aware / {strict_recall:.4} strict id (vs exact cosine scan, {n_recall} queries)"
                ),
            ],
            vec!["pool parity 1/2/4".into(), "bit-identical".into()],
            vec!["shard parity".into(), "bit-identical".into()],
        ],
    );
    println!(
        concat!(
            "{{\"bench\":\"indexbench\",\"quick\":{quick},\"n\":{n},\"k\":{k},",
            "\"build_per_s\":{build:.0},\"index_mib\":{mb:.1},\"shards\":{shards},",
            "\"save_mib_s\":{save:.1},\"load_mib_s\":{load:.1},\"qps\":{qps:.1},",
            "\"recall_at_k\":{recall:.4},\"recall_at_k_strict_ids\":{strict:.4},",
            "\"pool_parity\":true,\"shard_parity\":true}}"
        ),
        quick = quick,
        n = n,
        k = K,
        build = build_rate,
        mb = mb,
        shards = index.shard_count(),
        save = mb / save_s,
        load = mb / load_s,
        qps = qps,
        recall = recall,
        strict = strict_recall,
    );
}
