//! **Table 2** — per-slot SDL extraction quality of every model.
//!
//! Trains the frame-MLP, CNN+GRU, and video-transformer models on the same
//! stratified split, evaluates all of them (plus the non-learned heuristic)
//! on the held-out test set, and prints one row per model.
//!
//! Run with `cargo run -p tsdx-bench --release --bin table2_extraction`
//! (`--quick` shrinks the dataset and epochs by ~5×). Add `--resume` to
//! checkpoint each training stage to `results/checkpoints/` after every
//! epoch and continue from there if the run is killed and restarted.

use tsdx_baselines::{CnnGru, CnnGruConfig, FrameMlp, FrameMlpConfig, HeuristicExtractor};
use tsdx_bench::{
    fit_model, fit_transformer, is_quick, pct, print_table, standard_clips, standard_split,
};
use tsdx_core::{evaluate, summarize, EvalSummary, ModelConfig};
use tsdx_data::ClipLabels;

fn row(name: &str, params: Option<usize>, s: &EvalSummary) -> Vec<String> {
    vec![
        name.to_string(),
        params.map_or("-".into(), |p| format!("{:.0}k", p as f32 / 1000.0)),
        pct(s.ego_acc),
        pct(s.ego_f1),
        pct(s.road_acc),
        pct(s.event_acc),
        pct(s.event_f1),
        pct(s.position_acc),
        pct(s.presence_f1),
        pct(s.mean_accuracy()),
    ]
}

fn main() {
    let (n, epochs) = if is_quick() { (300, 4) } else { (1500, 25) };
    eprintln!("generating {n} clips...");
    let clips = standard_clips(n);
    let split = standard_split(&clips);
    eprintln!("train {} / val {} / test {}", split.train.len(), split.val.len(), split.test.len());

    let truths: Vec<ClipLabels> = split.test.iter().map(|&i| clips[i].labels.clone()).collect();
    let mut rows = Vec::new();

    // Heuristic (no training).
    let heuristic = HeuristicExtractor::default();
    let preds: Vec<ClipLabels> =
        split.test.iter().map(|&i| heuristic.predict(&clips[i].video)).collect();
    rows.push(row("heuristic", None, &summarize(&preds, &truths)));

    // Frame-MLP.
    eprintln!("training frame-mlp...");
    let mut mlp = FrameMlp::new(FrameMlpConfig::default(), tsdx_bench::STD_SEED);
    fit_model("table2-frame-mlp", &mut mlp, &clips, &split.train, epochs);
    rows.push(row("frame-mlp", Some(mlp.num_params()), &evaluate(&mlp, &clips, &split.test)));

    // CNN+GRU.
    eprintln!("training cnn-gru...");
    let mut gru = CnnGru::new(CnnGruConfig::default(), tsdx_bench::STD_SEED);
    fit_model("table2-cnn-gru", &mut gru, &clips, &split.train, epochs);
    rows.push(row("cnn-gru", Some(gru.num_params()), &evaluate(&gru, &clips, &split.test)));

    // Video transformer (the paper's model).
    eprintln!("training video-transformer...");
    let vt = fit_transformer(
        "table2-video-transformer",
        ModelConfig::default(),
        &clips,
        &split.train,
        epochs,
    );
    rows.push(row("video-transformer", Some(vt.num_params()), &evaluate(&vt, &clips, &split.test)));

    print_table(
        "Table 2: SDL extraction quality (test split, %)",
        &[
            "model", "params", "ego", "ego-F1", "road", "event", "event-F1", "pos", "pres-F1",
            "mean",
        ],
        &rows,
    );
}
