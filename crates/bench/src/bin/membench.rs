//! Memory-plane A/B harness (PR 5).
//!
//! Measures the kernels and end-to-end steps named by the PR 5 acceptance
//! criteria and prints one JSON object of per-metric **median microseconds**
//! over a fixed number of in-process repetitions. The interleaved
//! same-window protocol from `BENCH_pr2.json` runs this binary alternately
//! from the saved previous-PR build and the current build for several
//! rounds and compares medians across rounds, so host contention hits both
//! sides equally in expectation.
//!
//! Run with `cargo run -p tsdx-bench --release --bin membench`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_bench::standard_clips;
use tsdx_core::{multitask_loss, ClipModel, LossWeights, ModelConfig, VideoScenarioTransformer};
use tsdx_data::collate;
use tsdx_tensor::ops::{self, Conv2dSpec};
use tsdx_tensor::{pool, Graph, Tensor};

/// Median of `reps` timed runs of `f`, in microseconds.
fn median_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up rep per metric: first-touch page faults and lazy
    // pool/env initialization are not steady state.
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let model = VideoScenarioTransformer::new(ModelConfig::default(), 0);
    let clips = standard_clips(8);
    let refs: Vec<&tsdx_data::Clip> = clips.iter().collect();
    let batch = collate(&refs);
    let clip8 = Tensor::from_fn(&[8, 8, 32, 32], |i| (i % 97) as f32 / 97.0);

    let a64 = Tensor::from_fn(&[64, 64], |i| ((i * 17) % 31) as f32 * 0.03 - 0.45);
    let b64 = Tensor::from_fn(&[64, 64], |i| ((i * 13) % 29) as f32 * 0.03 - 0.4);
    let a256 = Tensor::from_fn(&[256, 256], |i| ((i * 17) % 31) as f32 * 0.03 - 0.45);
    let b256 = Tensor::from_fn(&[256, 256], |i| ((i * 13) % 29) as f32 * 0.03 - 0.4);

    let q = Tensor::from_fn(&[32, 17, 16], |i| (i % 19) as f32 * 0.05 - 0.45);
    let k = Tensor::from_fn(&[32, 17, 16], |i| (i % 23) as f32 * 0.04 - 0.4);
    let v = Tensor::from_fn(&[32, 17, 16], |i| (i % 29) as f32 * 0.03 - 0.4);
    let scale = 1.0 / 4.0;
    let gout = Tensor::from_fn(&[32, 17, 16], |i| (i % 13) as f32 * 0.02 - 0.1);

    let sm_in = Tensor::from_fn(&[8, 17, 17], |i| (i % 11) as f32 * 0.2 - 1.0);
    let ln_in = Tensor::from_fn(&[8, 17, 64], |i| (i % 23) as f32 * 0.04 - 0.4);
    let gamma = Tensor::ones(&[64]);
    let beta = Tensor::zeros(&[64]);
    let img = Tensor::from_fn(&[8, 1, 32, 32], |i| (i % 7) as f32 * 0.1);
    let wconv = Tensor::from_fn(&[8, 1, 3, 3], |i| (i % 5) as f32 * 0.05 - 0.1);
    let xsplit = Tensor::from_fn(&[8, 17, 4, 16], |i| (i % 19) as f32 * 0.05 - 0.45);

    let w1 = Tensor::from_fn(&[64, 128], |i| ((i * 7) % 13) as f32 * 0.01 - 0.06);
    let w2 = Tensor::from_fn(&[128, 10], |i| ((i * 5) % 11) as f32 * 0.01 - 0.05);
    let xmlp = Tensor::from_fn(&[32, 64], |i| (i % 17) as f32 * 0.05 - 0.4);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();

    let fwd = |videos: &Tensor| {
        let mut g = Graph::new();
        let p = model.params().bind_frozen(&mut g);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = model.forward(&mut g, &p, videos, &mut rng, false);
        std::hint::black_box(g.value(logits.ego).sum());
    };
    let step = || {
        let mut g = Graph::new();
        let binding = model.params().bind(&mut g);
        let mut rng = StdRng::seed_from_u64(1);
        let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, true);
        let loss = multitask_loss(&mut g, &logits, &batch, &LossWeights::default());
        let grads = g.backward(loss);
        std::hint::black_box(model.params().collect_grads(&binding, &grads));
    };

    let mut out: Vec<(&str, f64)> = Vec::new();

    out.push((
        "matmul_64x64x64_us",
        median_us(40, || {
            std::hint::black_box(ops::matmul(&a64, &b64));
        }),
    ));
    out.push((
        "matmul_256x256x256_us",
        median_us(15, || {
            std::hint::black_box(ops::matmul(&a256, &b256));
        }),
    ));
    out.push((
        "matmul_256x256x256_t2_us",
        median_us(15, || {
            std::hint::black_box(ops::matmul_with_threads(&a256, &b256, 2));
        }),
    ));
    // Transposed-B 256^3: exercises the strided-operand path (dot kernel
    // before PR 5, packed panels after).
    let b256t = ops::transpose_last2(&b256);
    out.push((
        "matmul_256x256x256_bt_us",
        median_us(15, || {
            std::hint::black_box(ops::matmul(&a256, &b256t));
        }),
    ));
    out.push((
        "head_split_view_us",
        median_us(40, || {
            let heads = ops::permute(&xsplit, &[0, 2, 1, 3]);
            let kt = ops::transpose_last2(&heads);
            std::hint::black_box(ops::matmul(&heads, &kt));
        }),
    ));
    out.push((
        "attention_fused_32x17x16_us",
        median_us(60, || {
            std::hint::black_box(ops::attention(&q, &k, &v, scale));
        }),
    ));
    out.push((
        "attention_composed_32x17x16_us",
        median_us(60, || {
            let kt = ops::transpose_last2(&k);
            let s = ops::scale(&ops::matmul(&q, &kt), scale);
            let p = ops::softmax_last(&s);
            std::hint::black_box(ops::matmul(&p, &v));
        }),
    ));
    out.push((
        "attention_fused_backward_32x17x16_us",
        median_us(40, || {
            std::hint::black_box(ops::attention_backward(&q, &k, &v, scale, &gout));
        }),
    ));
    out.push((
        "softmax_8x17x17_us",
        median_us(60, || {
            std::hint::black_box(ops::softmax_last(&sm_in));
        }),
    ));
    out.push((
        "layernorm_8x17x64_us",
        median_us(60, || {
            let mut g = Graph::new();
            let x = g.constant(ln_in.clone());
            let ga = g.constant(gamma.clone());
            let be = g.constant(beta.clone());
            std::hint::black_box(g.layer_norm(x, ga, be, 1e-5));
        }),
    ));
    out.push((
        "conv2d_8x1x32x32_k3_us",
        median_us(30, || {
            std::hint::black_box(ops::conv2d(&img, &wconv, &Conv2dSpec::new(3, 1, 1)));
        }),
    ));
    out.push((
        "autograd_mlp_step_64x128_us",
        median_us(30, || {
            let mut g = Graph::new();
            let w1v = g.leaf(w1.clone());
            let w2v = g.leaf(w2.clone());
            let xv = g.constant(xmlp.clone());
            let h = g.matmul(xv, w1v);
            let h = g.gelu(h);
            let logits = g.matmul(h, w2v);
            let loss = g.cross_entropy(logits, &labels);
            std::hint::black_box(g.backward(loss));
        }),
    ));
    out.push(("table4_batch8_fwd_us", median_us(9, || fwd(&clip8))));
    for threads in [1usize, 2, 4] {
        let key: &'static str = match threads {
            1 => "encoder_threads_batch8_t1_us",
            2 => "encoder_threads_batch8_t2_us",
            _ => "encoder_threads_batch8_t4_us",
        };
        out.push((
            key,
            median_us(9, || {
                pool::with_forced_threads(threads, || fwd(&clip8));
            }),
        ));
    }
    out.push(("table4_batch8_step_us", median_us(9, step)));

    println!("{{");
    for (i, (k, us)) in out.iter().enumerate() {
        let comma = if i + 1 == out.len() { "" } else { "," };
        println!("  \"{k}\": {us:.1}{comma}");
    }
    println!("}}");
}
