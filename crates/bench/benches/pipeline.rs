//! Data-pipeline throughput: scenario sampling, simulation, rendering, and
//! the full clip-generation path.
//!
//! Run with `cargo bench -p tsdx-bench --bench pipeline`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_data::{generate_clip, DatasetConfig};
use tsdx_render::{render_video, RenderConfig, WorldMap};
use tsdx_sim::{SamplerConfig, ScenarioSampler};

fn bench_pipeline(c: &mut Criterion) {
    let sampler = ScenarioSampler::new(SamplerConfig::default());

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("sample_scenario", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| std::hint::black_box(sampler.sample(&mut rng)))
    });

    let generated = sampler.sample(&mut StdRng::seed_from_u64(1));
    group.bench_function("simulate_8s_dt100ms", |b| {
        b.iter(|| std::hint::black_box(generated.world.simulate(0.1)))
    });

    let traj = generated.world.simulate(0.1);
    group.bench_function("worldmap_build", |b| {
        b.iter(|| std::hint::black_box(WorldMap::build(&generated.world.road)))
    });
    group.bench_function("render_video_8x32x32", |b| {
        let cfg = RenderConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| std::hint::black_box(render_video(&generated.world, &traj, &cfg, &mut rng)))
    });

    group.bench_function("generate_clip_end_to_end", |b| {
        let cfg = DatasetConfig::default();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(generate_clip(&cfg, i % 64))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
