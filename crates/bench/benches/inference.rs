//! **Table 4** — inference latency / throughput per model.
//!
//! Criterion benchmarks of the forward pass (weights untrained — latency is
//! weight-independent): single clip and batch-8, for the video transformer
//! (both attention variants) and the learned baselines. Parameter counts
//! are printed alongside.
//!
//! Run with `cargo bench -p tsdx-bench --bench inference`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_baselines::{CnnGru, CnnGruConfig, FrameMlp, FrameMlpConfig, HeuristicExtractor};
use tsdx_core::{AttentionKind, ClipModel, ModelConfig, VideoScenarioTransformer};
use tsdx_tensor::{Graph, Tensor};

fn forward_once(model: &dyn ClipModel, videos: &Tensor) {
    let mut g = Graph::new();
    let p = model.params().bind_frozen(&mut g);
    let mut rng = StdRng::seed_from_u64(0);
    let logits = model.forward(&mut g, &p, videos, &mut rng, false);
    std::hint::black_box(g.value(logits.ego).sum());
}

fn bench_inference(c: &mut Criterion) {
    let clip1 = Tensor::from_fn(&[1, 8, 32, 32], |i| (i % 97) as f32 / 97.0);
    let clip8 = Tensor::from_fn(&[8, 8, 32, 32], |i| (i % 97) as f32 / 97.0);

    let vt = VideoScenarioTransformer::new(ModelConfig::default(), 0);
    let vt_joint = VideoScenarioTransformer::new(
        ModelConfig { attention: AttentionKind::Joint, ..ModelConfig::default() },
        0,
    );
    let gru = CnnGru::new(CnnGruConfig::default(), 0);
    let mlp = FrameMlp::new(FrameMlpConfig::default(), 0);
    let heuristic = HeuristicExtractor::default();
    let single = clip1.reshape(&[8, 32, 32]);

    eprintln!(
        "params: transformer={} joint={} cnn-gru={} frame-mlp={}",
        vt.num_params(),
        vt_joint.num_params(),
        gru.num_params(),
        mlp.num_params()
    );

    let mut group = c.benchmark_group("table4_single_clip");
    group.sample_size(20);
    group.bench_function("video-transformer", |b| b.iter(|| forward_once(&vt, &clip1)));
    group.bench_function("video-transformer-joint", |b| b.iter(|| forward_once(&vt_joint, &clip1)));
    group.bench_function("cnn-gru", |b| b.iter(|| forward_once(&gru, &clip1)));
    group.bench_function("frame-mlp", |b| b.iter(|| forward_once(&mlp, &clip1)));
    group.bench_function("heuristic", |b| {
        b.iter(|| std::hint::black_box(heuristic.predict(&single)))
    });
    group.finish();

    let mut group = c.benchmark_group("table4_batch8");
    group.sample_size(10);
    group.bench_function("video-transformer", |b| b.iter(|| forward_once(&vt, &clip8)));
    group.bench_function("cnn-gru", |b| b.iter(|| forward_once(&gru, &clip8)));
    group.bench_function("frame-mlp", |b| b.iter(|| forward_once(&mlp, &clip8)));
    group.finish();

    // Encoder forward under explicit matmul thread counts (the env override
    // is read per matmul call, so setting it between runs is safe here).
    let mut group = c.benchmark_group("encoder_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        std::env::set_var("TSDX_NUM_THREADS", threads.to_string());
        group
            .bench_function(format!("batch8_t{threads}"), |b| b.iter(|| forward_once(&vt, &clip8)));
    }
    std::env::remove_var("TSDX_NUM_THREADS");
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
