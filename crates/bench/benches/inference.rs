//! **Table 4** — inference latency / throughput per model.
//!
//! Criterion benchmarks of the forward pass (weights untrained — latency is
//! weight-independent): single clip and batch-8, for the video transformer
//! (both attention variants) and the learned baselines. Parameter counts
//! are printed alongside.
//!
//! Run with `cargo bench -p tsdx-bench --bench inference`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_baselines::{CnnGru, CnnGruConfig, FrameMlp, FrameMlpConfig, HeuristicExtractor};
use tsdx_core::{
    AttentionKind, ClipModel, ModelConfig, ScenarioExtractor, VideoScenarioTransformer,
};
use tsdx_data::{generate_clip, DatasetConfig};
use tsdx_nn::{ParamStore, TransformerEncoder};
use tsdx_tensor::{pool, Graph, Tensor};

fn forward_once(model: &dyn ClipModel, videos: &Tensor) {
    let mut g = Graph::new();
    let p = model.params().bind_frozen(&mut g);
    let mut rng = StdRng::seed_from_u64(0);
    let logits = model.forward(&mut g, &p, videos, &mut rng, false);
    std::hint::black_box(g.value(logits.ego).sum());
}

fn bench_inference(c: &mut Criterion) {
    let clip1 = Tensor::from_fn(&[1, 8, 32, 32], |i| (i % 97) as f32 / 97.0);
    let clip8 = Tensor::from_fn(&[8, 8, 32, 32], |i| (i % 97) as f32 / 97.0);

    let vt = VideoScenarioTransformer::new(ModelConfig::default(), 0);
    let vt_joint = VideoScenarioTransformer::new(
        ModelConfig { attention: AttentionKind::Joint, ..ModelConfig::default() },
        0,
    );
    let gru = CnnGru::new(CnnGruConfig::default(), 0);
    let mlp = FrameMlp::new(FrameMlpConfig::default(), 0);
    let heuristic = HeuristicExtractor::default();
    let single = clip1.reshape(&[8, 32, 32]);

    eprintln!(
        "params: transformer={} joint={} cnn-gru={} frame-mlp={}",
        vt.num_params(),
        vt_joint.num_params(),
        gru.num_params(),
        mlp.num_params()
    );

    let mut group = c.benchmark_group("table4_single_clip");
    group.sample_size(20);
    group.bench_function("video-transformer", |b| b.iter(|| forward_once(&vt, &clip1)));
    group.bench_function("video-transformer-joint", |b| b.iter(|| forward_once(&vt_joint, &clip1)));
    group.bench_function("cnn-gru", |b| b.iter(|| forward_once(&gru, &clip1)));
    group.bench_function("frame-mlp", |b| b.iter(|| forward_once(&mlp, &clip1)));
    group.bench_function("heuristic", |b| {
        b.iter(|| std::hint::black_box(heuristic.predict(&single)))
    });
    group.finish();

    let mut group = c.benchmark_group("table4_batch8");
    group.sample_size(10);
    group.bench_function("video-transformer", |b| b.iter(|| forward_once(&vt, &clip8)));
    group.bench_function("cnn-gru", |b| b.iter(|| forward_once(&gru, &clip8)));
    group.bench_function("frame-mlp", |b| b.iter(|| forward_once(&mlp, &clip8)));
    group.finish();

    // Encoder forward under explicit pool chunk counts. TSDX_NUM_THREADS is
    // parsed once at pool initialization, so the old set_var-between-runs
    // trick no longer works; `with_forced_threads` overrides the apparent
    // pool size (and serial thresholds) for the duration of a closure.
    let mut group = c.benchmark_group("encoder_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("batch8_t{threads}"), |b| {
            b.iter(|| pool::with_forced_threads(threads, || forward_once(&vt, &clip8)))
        });
    }
    group.finish();

    // Fused vs composed attention through a transformer encoder stack sized
    // like the table-4 spatial stage (batch 8 clips -> 32 sequences of
    // 16+1 tokens at width 64): `forward` uses the fused attention op,
    // `forward_with_attn` the composed matmul/softmax/matmul graph.
    let mut group = c.benchmark_group("encoder_attention");
    group.sample_size(20);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 64, 2, 4, 2, 0.0);
    let tokens = Tensor::from_fn(&[32, 17, 64], |i| (i % 89) as f32 * 0.01 - 0.4);
    group.bench_function("batch8_fused", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let p = store.bind_frozen(&mut g);
            let x = g.constant(tokens.clone());
            let mut r = StdRng::seed_from_u64(0);
            let y = enc.forward(&mut g, &p, x, &mut r, false);
            std::hint::black_box(g.value(y).sum());
        })
    });
    group.bench_function("batch8_composed", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let p = store.bind_frozen(&mut g);
            let x = g.constant(tokens.clone());
            let mut r = StdRng::seed_from_u64(0);
            let (y, _) = enc.forward_with_attn(&mut g, &p, x, &mut r, false);
            std::hint::black_box(g.value(y).sum());
        })
    });
    group.finish();

    // End-to-end scenario extraction over a batch of simulator clips.
    let mut group = c.benchmark_group("extract");
    group.sample_size(10);
    let extractor = ScenarioExtractor::untrained(ModelConfig::default(), 0);
    let clips: Vec<_> = (0..8).map(|i| generate_clip(&DatasetConfig::default(), i)).collect();
    group.bench_function("extract_batch_8", |b| {
        b.iter(|| std::hint::black_box(extractor.extract_batch(&clips)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
