//! Micro-benchmarks of the tensor substrate: the kernels that dominate
//! training time (matmul, softmax, layer norm, im2col convolution) and one
//! full autograd step.
//!
//! Run with `cargo bench -p tsdx-bench --bench tensor_ops`.

use criterion::{criterion_group, criterion_main, Criterion};
use tsdx_tensor::ops::{self, Conv2dSpec};
use tsdx_tensor::{Graph, Tensor};

fn bench_kernels(c: &mut Criterion) {
    let a64 = Tensor::from_fn(&[64, 64], |i| ((i * 17) % 31) as f32 * 0.03 - 0.45);
    let b64 = Tensor::from_fn(&[64, 64], |i| ((i * 13) % 29) as f32 * 0.03 - 0.4);
    let a256 = Tensor::from_fn(&[256, 256], |i| ((i * 17) % 31) as f32 * 0.03 - 0.45);
    let b256 = Tensor::from_fn(&[256, 256], |i| ((i * 13) % 29) as f32 * 0.03 - 0.4);
    let batched = Tensor::from_fn(&[8, 17, 64], |i| (i % 23) as f32 * 0.04 - 0.4);

    let mut group = c.benchmark_group("matmul");
    group.bench_function("64x64x64", |b| b.iter(|| std::hint::black_box(ops::matmul(&a64, &b64))));
    group.sample_size(20);
    group.bench_function("256x256x256", |b| {
        b.iter(|| std::hint::black_box(ops::matmul(&a256, &b256)))
    });
    for threads in [1usize, 2, ops::configured_threads()] {
        group.bench_function(format!("256x256x256_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(ops::matmul_with_threads(&a256, &b256, threads)))
        });
    }
    group.finish();

    // Strided views vs forced materialization: the same permute+narrow+matmul
    // chain, once consuming views directly and once copying after every
    // layout op (the pre-view behaviour).
    let mut group = c.benchmark_group("views");
    let x = Tensor::from_fn(&[8, 17, 4, 16], |i| (i % 19) as f32 * 0.05 - 0.45);
    group.bench_function("head_split_view", |b| {
        b.iter(|| {
            let heads = ops::permute(&x, &[0, 2, 1, 3]); // [8, 4, 17, 16]
            let kt = ops::transpose_last2(&heads);
            std::hint::black_box(ops::matmul(&heads, &kt))
        })
    });
    group.bench_function("head_split_copy", |b| {
        b.iter(|| {
            let heads = ops::permute(&x, &[0, 2, 1, 3]).contiguous();
            let kt = ops::transpose_last2(&heads).contiguous();
            std::hint::black_box(ops::matmul(&heads, &kt))
        })
    });
    group.bench_function("narrow_chain_view", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for t in 0..17 {
                acc += ops::narrow(&x, 1, t, 1).sum();
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("narrow_chain_copy", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for t in 0..17 {
                acc += ops::narrow(&x, 1, t, 1).contiguous().sum();
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rowwise");
    group.bench_function("softmax_8x17x17", |b| {
        let t = Tensor::from_fn(&[8, 17, 17], |i| (i % 11) as f32 * 0.2 - 1.0);
        b.iter(|| std::hint::black_box(ops::softmax_last(&t)))
    });
    group.bench_function("layernorm_8x17x64", |b| {
        let gamma = Tensor::ones(&[64]);
        let beta = Tensor::zeros(&[64]);
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.constant(batched.clone());
            let ga = g.constant(gamma.clone());
            let be = g.constant(beta.clone());
            std::hint::black_box(g.layer_norm(x, ga, be, 1e-5));
        })
    });
    group.finish();

    // Fused attention kernel vs the composed matmul/scale/softmax/matmul
    // chain on the table-4 head geometry ([B*H, T, Dh] = 8 clips x 4 heads,
    // 17 tokens, width 16).
    let mut group = c.benchmark_group("attention");
    let q = Tensor::from_fn(&[32, 17, 16], |i| (i % 19) as f32 * 0.05 - 0.45);
    let k = Tensor::from_fn(&[32, 17, 16], |i| (i % 23) as f32 * 0.04 - 0.4);
    let v = Tensor::from_fn(&[32, 17, 16], |i| (i % 29) as f32 * 0.03 - 0.4);
    let scale = 1.0 / 4.0;
    group.bench_function("fused_32x17x16", |b| {
        b.iter(|| std::hint::black_box(ops::attention(&q, &k, &v, scale)))
    });
    group.bench_function("composed_32x17x16", |b| {
        b.iter(|| {
            let kt = ops::transpose_last2(&k);
            let s = ops::scale(&ops::matmul(&q, &kt), scale);
            let p = ops::softmax_last(&s);
            std::hint::black_box(ops::matmul(&p, &v))
        })
    });
    group.bench_function("fused_backward_32x17x16", |b| {
        let g = Tensor::from_fn(&[32, 17, 16], |i| (i % 13) as f32 * 0.02 - 0.1);
        b.iter(|| std::hint::black_box(ops::attention_backward(&q, &k, &v, scale, &g)))
    });
    group.finish();

    let mut group = c.benchmark_group("conv");
    group.bench_function("conv2d_8x1x32x32_k3", |b| {
        let img = Tensor::from_fn(&[8, 1, 32, 32], |i| (i % 7) as f32 * 0.1);
        let w = Tensor::from_fn(&[8, 1, 3, 3], |i| (i % 5) as f32 * 0.05 - 0.1);
        b.iter(|| std::hint::black_box(ops::conv2d(&img, &w, &Conv2dSpec::new(3, 1, 1))))
    });
    group.finish();

    let mut group = c.benchmark_group("autograd");
    group.bench_function("mlp_step_64x128", |b| {
        let w1 = Tensor::from_fn(&[64, 128], |i| ((i * 7) % 13) as f32 * 0.01 - 0.06);
        let w2 = Tensor::from_fn(&[128, 10], |i| ((i * 5) % 11) as f32 * 0.01 - 0.05);
        let x = Tensor::from_fn(&[32, 64], |i| (i % 17) as f32 * 0.05 - 0.4);
        let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
        b.iter(|| {
            let mut g = Graph::new();
            let w1v = g.leaf(w1.clone());
            let w2v = g.leaf(w2.clone());
            let xv = g.constant(x.clone());
            let h = g.matmul(xv, w1v);
            let h = g.gelu(h);
            let logits = g.matmul(h, w2v);
            let loss = g.cross_entropy(logits, &labels);
            std::hint::black_box(g.backward(loss));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
