//! Property-based tests of decoding and tubelet invariants.

use proptest::prelude::*;
use tsdx_core::{decode_logits, extract_tubelets, ModelConfig};
use tsdx_data::POSITION_COUNT;
use tsdx_sdl::{vocab, ActorKind, EgoManeuver, RoadKind};
use tsdx_tensor::Tensor;

fn logits(n: usize, c: usize, seed: u64) -> Tensor {
    Tensor::from_fn(&[n, c], move |i| {
        let x = (i as u64 + 1).wrapping_mul(seed.wrapping_add(0x9E37_79B9));
        ((x % 2000) as f32 / 100.0) - 10.0
    })
}

proptest! {
    #[test]
    fn decoded_labels_always_produce_valid_sdl(seed in 0u64..20_000, b in 1usize..6) {
        let labels = decode_logits(
            &logits(b, EgoManeuver::COUNT, seed),
            &logits(b, RoadKind::COUNT, seed + 1),
            &logits(b, vocab::EVENT_COUNT, seed + 2),
            &logits(b, POSITION_COUNT, seed + 3),
            &logits(b, ActorKind::COUNT, seed + 4),
        );
        prop_assert_eq!(labels.len(), b);
        for l in labels {
            let scenario = l.to_scenario();
            prop_assert!(scenario.validate().is_ok());
            // Canonical text round-trips.
            let parsed: tsdx_sdl::Scenario = scenario.to_string().parse().unwrap();
            prop_assert_eq!(parsed, scenario);
        }
    }

    #[test]
    fn tubelets_partition_the_video_exactly(
        b in 1usize..3,
        t_groups in 1usize..3,
        grid in 1usize..4,
        seed in 0u64..1_000,
    ) {
        // Build a config whose dimensions match the sampled structure.
        let cfg = ModelConfig {
            frames: t_groups * 2,
            tubelet_t: 2,
            height: grid * 4,
            width: grid * 4,
            patch: 4,
            dim: 8,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            ..ModelConfig::default()
        };
        prop_assert!(cfg.validate().is_ok());
        let video = Tensor::from_fn(&[b, cfg.frames, cfg.height, cfg.width], |i| {
            ((i as u64).wrapping_mul(seed + 7) % 997) as f32 / 997.0
        });
        let tubs = extract_tubelets(&cfg, &video);
        prop_assert_eq!(
            tubs.shape(),
            &[b, cfg.n_time() * cfg.n_space(), cfg.tubelet_volume()][..]
        );
        // Every pixel appears exactly once: totals match.
        let total_video: f32 = video.data().iter().sum();
        let total_tubs: f32 = tubs.data().iter().sum();
        prop_assert!((total_video - total_tubs).abs() < total_video.abs() * 1e-5 + 1e-3);
        // And the multiset of values is preserved.
        let mut a: Vec<f32> = video.data().to_vec();
        let mut c: Vec<f32> = tubs.data().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        c.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, c);
    }
}
