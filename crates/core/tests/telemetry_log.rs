//! Golden test for the JSONL training-log schema.
//!
//! The log is a machine-readable contract (dashboards and scripts parse
//! it), so this test pins the event vocabulary, the per-event required
//! fields, and basic JSON well-formedness — without depending on the
//! `TSDX_LOG` environment (an explicit `log_path` forces debug level).

use tsdx_core::{
    train_resilient, ModelConfig, ResilienceConfig, TrainConfig, VideoScenarioTransformer,
};
use tsdx_data::{generate_dataset, DatasetConfig};
use tsdx_nn::LrSchedule;
use tsdx_render::RenderConfig;

fn tiny_model(seed: u64) -> VideoScenarioTransformer {
    VideoScenarioTransformer::new(
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            ..ModelConfig::default()
        },
        seed,
    )
}

/// Minimal structural JSON check: an object of `"key":value` pairs with no
/// nesting (the schema is flat by design) and correctly quoted strings.
fn assert_flat_json_object(line: &str) {
    assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
    assert!(!line.contains('\n'), "event spans lines: {line}");
    let inner = &line[1..line.len() - 1];
    assert!(!inner.contains('{') && !inner.contains('['), "schema must stay flat: {line}");
    // Quotes must balance (escaped quotes never appear in our keys and only
    // in path values on exotic filesystems).
    let quotes = inner.matches('"').count();
    assert_eq!(quotes % 2, 0, "unbalanced quotes: {line}");
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag).unwrap_or_else(|| panic!("missing field {key} in {line}"));
    let rest = &line[at + tag.len()..];
    let end = if let Some(quoted) = rest.strip_prefix('"') {
        quoted.find('"').map(|i| i + 2).unwrap_or(rest.len())
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    &rest[..end]
}

#[test]
fn training_log_matches_golden_schema() {
    let path = std::env::temp_dir().join(format!("tsdx-telemetry-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let ckpt = std::env::temp_dir().join(format!("tsdx-telemetry-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    let clips = generate_dataset(&DatasetConfig {
        n_clips: 8,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    });
    let idx: Vec<usize> = (0..8).collect();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(1e-3),
        ..TrainConfig::default()
    };
    let mut model = tiny_model(0);
    let r = ResilienceConfig {
        checkpoint: Some(ckpt.clone()),
        log_path: Some(path.clone()),
        ..ResilienceConfig::default()
    };
    let report = train_resilient(&mut model, &clips, &idx, &cfg, &r).unwrap();
    assert_eq!(report.epoch_losses.len(), 2);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // Every line is a flat JSON object tagged with a known event.
    const KNOWN: [&str; 8] =
        ["train_start", "resume", "step", "skip", "epoch", "checkpoint", "diverged", "train_end"];
    for line in &lines {
        assert_flat_json_object(line);
        let ev = field(line, "event");
        assert!(KNOWN.iter().any(|k| ev == format!("\"{k}\"")), "unknown event {ev} in {line}");
    }

    // The run frame: header first, footer last.
    assert_eq!(field(lines[0], "event"), "\"train_start\"");
    assert_eq!(field(lines[0], "model"), "\"video-transformer\"");
    assert_eq!(field(lines[0], "epochs"), "2");
    assert_eq!(field(lines[0], "batch_size"), "4");
    assert_eq!(field(lines[0], "clips"), "8");
    let last = lines.last().unwrap();
    assert_eq!(field(last, "event"), "\"train_end\"");
    assert_eq!(field(last, "steps"), "4");
    assert_eq!(field(last, "skipped"), "0");

    // Per-event required fields.
    let steps: Vec<&&str> = lines.iter().filter(|l| field(l, "event") == "\"step\"").collect();
    assert_eq!(steps.len(), 4, "explicit log_path forces debug level (one event per step)");
    for (i, s) in steps.iter().enumerate() {
        assert_eq!(field(s, "step"), i.to_string());
        for k in ["epoch", "loss", "lr", "grad_norm"] {
            let v = field(s, k);
            assert!(!v.is_empty(), "empty {k} in {s}");
        }
        // clip_norm > 0 in the default config, so the norm is a number.
        assert_ne!(field(s, "grad_norm"), "null");
    }
    let epochs: Vec<&&str> = lines.iter().filter(|l| field(l, "event") == "\"epoch\"").collect();
    assert_eq!(epochs.len(), 2);
    for e in &epochs {
        for k in ["epoch", "loss", "batches", "skipped"] {
            field(e, k);
        }
    }
    let ckpts: Vec<&&str> =
        lines.iter().filter(|l| field(l, "event") == "\"checkpoint\"").collect();
    assert_eq!(ckpts.len(), 2, "checkpoint_every=1 over 2 epochs");
    for c in &ckpts {
        for k in ["epoch", "step", "path", "write_ms"] {
            field(c, k);
        }
        assert_ne!(field(c, "write_ms"), "null");
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn resumed_run_logs_resume_event() {
    let base = std::env::temp_dir().join(format!("tsdx-telemetry-resume-{}", std::process::id()));
    let log1 = base.with_extension("1.jsonl");
    let log2 = base.with_extension("2.jsonl");
    let ckpt = base.with_extension("ckpt");
    for p in [&log1, &log2, &ckpt] {
        let _ = std::fs::remove_file(p);
    }

    let clips = generate_dataset(&DatasetConfig {
        n_clips: 4,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    });
    let idx: Vec<usize> = (0..4).collect();
    let mut model = tiny_model(1);
    let cfg1 = TrainConfig {
        epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(1e-3),
        ..TrainConfig::default()
    };
    let r1 = ResilienceConfig {
        checkpoint: Some(ckpt.clone()),
        log_path: Some(log1.clone()),
        ..ResilienceConfig::default()
    };
    train_resilient(&mut model, &clips, &idx, &cfg1, &r1).unwrap();

    let cfg2 = TrainConfig { epochs: 2, ..cfg1 };
    let r2 = ResilienceConfig {
        checkpoint: Some(ckpt.clone()),
        resume: true,
        log_path: Some(log2.clone()),
        ..ResilienceConfig::default()
    };
    train_resilient(&mut model, &clips, &idx, &cfg2, &r2).unwrap();

    let text = std::fs::read_to_string(&log2).unwrap();
    let resume_line = text
        .lines()
        .find(|l| l.contains("\"event\":\"resume\""))
        .expect("resumed run must log a resume event");
    assert!(resume_line.contains("\"epoch\":1"), "unexpected resume line: {resume_line}");
    // No resume event in the fresh run's log.
    assert!(!std::fs::read_to_string(&log1).unwrap().contains("\"event\":\"resume\""));

    for p in [&log1, &log2, &ckpt] {
        let _ = std::fs::remove_file(p);
    }
}
