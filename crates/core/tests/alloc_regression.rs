//! Steady-state training steps barely touch the system allocator.
//!
//! The workspace arena (`tsdx_tensor::workspace`) exists to recycle the
//! large `f32` buffers behind activations, gradients, and kernel scratch:
//! after a few warm-up steps every big allocation should be served from the
//! arena, leaving only small metadata (shapes, tape nodes, `Arc` headers)
//! for the system allocator. This test pins that property with a counting
//! global allocator: the same training step is driven with the arena
//! disabled and enabled, and the enabled run must allocate at least 10×
//! fewer bytes per step.
//!
//! Lives in its own integration-test file so the `#[global_allocator]`
//! override owns the whole process and no concurrent `#[test]` pollutes the
//! counters; the pool is forced to one chunk so every allocation lands on
//! the counting thread deterministically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_core::{multitask_loss, ClipModel, LossWeights, ModelConfig, VideoScenarioTransformer};
use tsdx_data::{collate, generate_dataset, DatasetConfig};
use tsdx_render::RenderConfig;
use tsdx_tensor::{pool, workspace, Graph};

/// Forwards to the system allocator, counting calls and bytes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
// SAFETY: delegates directly to `System`; the counters are relaxed atomics
// with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

#[test]
fn steady_state_step_allocations_drop_with_workspaces() {
    // The evaluation-default model (8x32x32 clips, width 64): its activation
    // and gradient buffers are tens of KB each, so buffer traffic — the
    // thing the arena absorbs — dominates the byte counts. On a toy config
    // small tape/shape metadata would swamp the measurement instead.
    let model = VideoScenarioTransformer::new(ModelConfig::default(), 0);
    let clips = generate_dataset(&DatasetConfig {
        n_clips: 4,
        render: RenderConfig::default(),
        ..DatasetConfig::default()
    });
    let refs: Vec<&tsdx_data::Clip> = clips.iter().collect();
    let batch = collate(&refs);

    let step = || {
        let mut g = Graph::new();
        let binding = model.params().bind(&mut g);
        let mut rng = StdRng::seed_from_u64(1);
        let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, true);
        let loss = multitask_loss(&mut g, &logits, &batch, &LossWeights::default());
        let grads = g.backward(loss);
        std::hint::black_box(model.params().collect_grads(&binding, &grads));
    };

    const WARMUP: usize = 3;
    const MEASURED: usize = 5;

    // Everything on this thread: the arena is thread-local, and so is the
    // meaning of `with_mode`.
    let (calls_off, bytes_off, calls_on, bytes_on) = pool::with_forced_threads(1, || {
        let (mut calls_off, mut bytes_off, mut calls_on, mut bytes_on) = (0, 0, 0, 0);
        workspace::with_mode(false, || {
            for _ in 0..WARMUP {
                step();
            }
            let (c0, b0) = snapshot();
            for _ in 0..MEASURED {
                step();
            }
            let (c1, b1) = snapshot();
            (calls_off, bytes_off) = (c1 - c0, b1 - b0);
        });
        workspace::with_mode(true, || {
            for _ in 0..WARMUP {
                step();
            }
            let (c0, b0) = snapshot();
            for _ in 0..MEASURED {
                step();
            }
            let (c1, b1) = snapshot();
            (calls_on, bytes_on) = (c1 - c0, b1 - b0);
        });
        (calls_off, bytes_off, calls_on, bytes_on)
    });

    let per_step = |v: u64| v / MEASURED as u64;
    eprintln!(
        "alloc/step: arena off {} calls / {} bytes, arena on {} calls / {} bytes",
        per_step(calls_off),
        per_step(bytes_off),
        per_step(calls_on),
        per_step(bytes_on),
    );

    assert!(bytes_on > 0 && bytes_off > 0, "counting allocator saw no traffic");
    assert!(
        bytes_off >= 10 * bytes_on,
        "workspace arena no longer absorbs the f32 buffer traffic: \
         {} bytes/step with arena off vs {} with arena on (need >= 10x)",
        per_step(bytes_off),
        per_step(bytes_on),
    );
    // Call-count budget: metadata (shapes, tape nodes, Arc headers) still
    // allocates, but recycling must remove the per-buffer allocations too.
    assert!(
        calls_off > calls_on,
        "arena on should issue fewer allocator calls: off {calls_off} vs on {calls_on}"
    );
}
