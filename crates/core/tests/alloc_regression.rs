//! Steady-state training steps barely touch the system allocator.
//!
//! The workspace arena (`tsdx_tensor::workspace`) exists to recycle the
//! large `f32` buffers behind activations, gradients, and kernel scratch:
//! after a few warm-up steps every big allocation should be served from the
//! arena, leaving only small metadata (shapes, tape nodes, `Arc` headers)
//! for the system allocator. This test pins that property with a counting
//! global allocator: the same training step is driven with the arena
//! disabled and enabled, and the enabled run must allocate at least 10×
//! fewer bytes per step.
//!
//! Lives in its own integration-test file so the `#[global_allocator]`
//! override owns the whole process; the tests here serialize on a mutex
//! (the harness would otherwise interleave them and pollute the counters),
//! and the pool is forced to one chunk so every allocation lands on the
//! counting thread deterministically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_core::{
    multitask_loss, ClipModel, LossWeights, ModelConfig, ScenarioExtractor,
    VideoScenarioTransformer,
};
use tsdx_data::{collate, generate_dataset, DatasetConfig};
use tsdx_render::RenderConfig;
use tsdx_tensor::{pool, workspace, Graph, Tensor};

/// Forwards to the system allocator, counting calls and bytes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
// SAFETY: delegates directly to `System`; the counters are relaxed atomics
// with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// Serializes the measuring tests so one test's allocations never land in
/// another's measurement window.
fn measuring() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn steady_state_step_allocations_drop_with_workspaces() {
    let _serial = measuring();
    // The evaluation-default model (8x32x32 clips, width 64): its activation
    // and gradient buffers are tens of KB each, so buffer traffic — the
    // thing the arena absorbs — dominates the byte counts. On a toy config
    // small tape/shape metadata would swamp the measurement instead.
    let model = VideoScenarioTransformer::new(ModelConfig::default(), 0);
    let clips = generate_dataset(&DatasetConfig {
        n_clips: 4,
        render: RenderConfig::default(),
        ..DatasetConfig::default()
    });
    let refs: Vec<&tsdx_data::Clip> = clips.iter().collect();
    let batch = collate(&refs);

    let step = || {
        let mut g = Graph::new();
        let binding = model.params().bind(&mut g);
        let mut rng = StdRng::seed_from_u64(1);
        let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, true);
        let loss = multitask_loss(&mut g, &logits, &batch, &LossWeights::default());
        let grads = g.backward(loss);
        std::hint::black_box(model.params().collect_grads(&binding, &grads));
    };

    const WARMUP: usize = 3;
    const MEASURED: usize = 5;

    // Everything on this thread: the arena is thread-local, and so is the
    // meaning of `with_mode`.
    let (calls_off, bytes_off, calls_on, bytes_on) = pool::with_forced_threads(1, || {
        let (mut calls_off, mut bytes_off, mut calls_on, mut bytes_on) = (0, 0, 0, 0);
        workspace::with_mode(false, || {
            for _ in 0..WARMUP {
                step();
            }
            let (c0, b0) = snapshot();
            for _ in 0..MEASURED {
                step();
            }
            let (c1, b1) = snapshot();
            (calls_off, bytes_off) = (c1 - c0, b1 - b0);
        });
        workspace::with_mode(true, || {
            for _ in 0..WARMUP {
                step();
            }
            let (c0, b0) = snapshot();
            for _ in 0..MEASURED {
                step();
            }
            let (c1, b1) = snapshot();
            (calls_on, bytes_on) = (c1 - c0, b1 - b0);
        });
        (calls_off, bytes_off, calls_on, bytes_on)
    });

    let per_step = |v: u64| v / MEASURED as u64;
    eprintln!(
        "alloc/step: arena off {} calls / {} bytes, arena on {} calls / {} bytes",
        per_step(calls_off),
        per_step(bytes_off),
        per_step(calls_on),
        per_step(bytes_on),
    );

    assert!(bytes_on > 0 && bytes_off > 0, "counting allocator saw no traffic");
    assert!(
        bytes_off >= 10 * bytes_on,
        "workspace arena no longer absorbs the f32 buffer traffic: \
         {} bytes/step with arena off vs {} with arena on (need >= 10x)",
        per_step(bytes_off),
        per_step(bytes_on),
    );
    // Call-count budget: metadata (shapes, tape nodes, Arc headers) still
    // allocates, but recycling must remove the per-buffer allocations too.
    assert!(
        calls_off > calls_on,
        "arena on should issue fewer allocator calls: off {calls_off} vs on {calls_on}"
    );
}

#[test]
fn quantized_steady_state_allocates_no_more_than_f32() {
    let _serial = measuring();
    // The int8 plane packs weights exactly once — at `quantize()` time.
    // Steady-state extraction under the int8 dial must therefore issue no
    // more allocator traffic than the f32 plane: activation quantization
    // runs in recycled thread-local scratch, outputs come from the same
    // workspace arena, and no weight is ever re-quantized or re-packed.
    // A regression that re-packs per call would multiply the byte count by
    // the packed-plane size per window and fail loudly here.
    use tsdx_core::precision::{self, Precision};

    let ex = ScenarioExtractor::untrained(ModelConfig::default(), 0);
    ex.quantize(); // prepack up front: packing cost must not be steady-state
    let cfg = *ex.model().config();
    let video =
        Tensor::from_fn(&[cfg.frames, cfg.height, cfg.width], |i| (i as f32 * 0.0041).sin() * 0.5);

    const WARMUP: usize = 3;
    const MEASURED: usize = 5;

    let run = |p: Precision| {
        precision::with_forced(p, || {
            for _ in 0..WARMUP {
                std::hint::black_box(ex.extract_checked(&video).unwrap());
            }
            let (c0, b0) = snapshot();
            for _ in 0..MEASURED {
                std::hint::black_box(ex.extract_checked(&video).unwrap());
            }
            let (c1, b1) = snapshot();
            (c1 - c0, b1 - b0)
        })
    };

    let ((calls_f32, bytes_f32), (calls_i8, bytes_i8)) = pool::with_forced_threads(1, || {
        workspace::with_mode(true, || (run(Precision::F32), run(Precision::Int8)))
    });

    let per = |v: u64| v / MEASURED as u64;
    eprintln!(
        "alloc/extract: f32 {} calls / {} bytes, int8 {} calls / {} bytes",
        per(calls_f32),
        per(bytes_f32),
        per(calls_i8),
        per(bytes_i8),
    );
    assert!(bytes_f32 > 0 && bytes_i8 > 0, "counting allocator saw no traffic");
    assert!(
        bytes_i8 <= bytes_f32,
        "int8 steady state allocates more than f32: {} vs {} bytes/extract \
         (is something re-quantizing or re-packing per call?)",
        per(bytes_i8),
        per(bytes_f32),
    );
}

#[test]
fn steady_state_stream_push_allocates_per_frame_not_per_window() {
    let _serial = measuring();
    // A longer window (16 frames = 8 tubelet groups at the default model
    // width) makes the claim measurable: pushing one group into a warm
    // session must cost roughly one group's worth of spatial-stage work,
    // while a full-window recompute pays for all eight groups — so its
    // allocator traffic must dwarf the incremental push's. A session that
    // secretly re-encoded the whole ring on every push would collapse the
    // ratio to ~1x and fail here.
    let cfg = ModelConfig { frames: 16, ..ModelConfig::default() };
    let nt = cfg.n_time() as u64;
    let ex = ScenarioExtractor::untrained(cfg, 0);
    let frame_len = cfg.tubelet_t * cfg.height * cfg.width;
    let video = |start: usize, frames: usize| {
        Tensor::from_fn(&[frames, cfg.height, cfg.width], |i| {
            (((start * frame_len / cfg.tubelet_t) + i) as f32 * 0.003).sin()
        })
    };

    const WARMUP: usize = 3;
    const MEASURED: usize = 5;

    let (bytes_push, bytes_full) = pool::with_forced_threads(1, || {
        workspace::with_mode(true, || {
            // Warm session: a full window plus a few steady-state slides so
            // the arena and the session's own buffers reach steady state.
            let mut session = ex.open_stream();
            session.push_frames(&video(0, cfg.frames)).unwrap();
            session.logits().unwrap();
            let mut fed = cfg.frames;
            for _ in 0..WARMUP {
                session.push_frames(&video(fed, cfg.tubelet_t)).unwrap();
                fed += cfg.tubelet_t;
                session.logits().unwrap();
            }

            // Steady state: one new group per window slide.
            let (_, b0) = snapshot();
            for _ in 0..MEASURED {
                session.push_frames(&video(fed, cfg.tubelet_t)).unwrap();
                fed += cfg.tubelet_t;
                std::hint::black_box(session.logits().unwrap());
            }
            let (_, b1) = snapshot();

            // Full recompute of the same windows: a cold session per window
            // (the `extract_checked` path), arena equally warm.
            let mut start = cfg.frames;
            for _ in 0..WARMUP {
                let mut cold = ex.open_stream();
                cold.push_frames(&video(start, cfg.frames)).unwrap();
                cold.logits().unwrap();
                start += cfg.tubelet_t;
            }
            let (_, b2) = snapshot();
            for _ in 0..MEASURED {
                let mut cold = ex.open_stream();
                cold.push_frames(&video(start, cfg.frames)).unwrap();
                start += cfg.tubelet_t;
                std::hint::black_box(cold.logits().unwrap());
            }
            let (_, b3) = snapshot();
            (b1 - b0, b3 - b2)
        })
    });

    let per = |v: u64| v / MEASURED as u64;
    eprintln!(
        "alloc/window: incremental push {} bytes, full recompute {} bytes ({}x, {} groups/window)",
        per(bytes_push),
        per(bytes_full),
        if bytes_push > 0 { bytes_full / bytes_push.max(1) } else { 0 },
        nt,
    );
    assert!(bytes_push > 0 && bytes_full > 0, "counting allocator saw no traffic");
    // O(new frames), not O(window): with 8 groups per window and one new
    // group per slide, full recompute must allocate measurably more than
    // the incremental push. The cold path encodes all 8 groups in one
    // batched `encode_group_batch` forward, so its spatial-stage traffic
    // is amortized rather than 8x a single group's — the healthy ratio is
    // ~1.8x, while a session that secretly re-encoded its whole ring per
    // push would pay the same batched 8-group forward as the cold path and
    // collapse to ~1.0x. 1.4x splits those regimes with headroom.
    assert!(
        bytes_full * 10 >= 14 * bytes_push,
        "streaming push no longer scales with new frames only: \
         {} bytes/slide streamed vs {} recomputed (need >= 1.4x)",
        per(bytes_push),
        per(bytes_full),
    );
}
