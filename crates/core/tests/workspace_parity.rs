//! Training results are bit-identical with the workspace arena on or off,
//! at every pool size.
//!
//! The arena's determinism contract (`tsdx_tensor::workspace`) is that
//! recycling buffers can never change a computed value: `take_zeroed` /
//! `take_filled` overwrite everything they hand out, and `take_uninit` is
//! reserved for call sites that store every element before any is read.
//! A violation anywhere in the kernel stack would leak stale values from
//! recycled buffers into results — and would depend on arena state, the
//! worst kind of nondeterminism. This test pins the contract end-to-end:
//! full training runs under every combination of workspace mode and forced
//! pool chunking must produce bit-identical parameters.

use tsdx_core::{train, ClipModel, ModelConfig, TrainConfig, VideoScenarioTransformer};
use tsdx_data::{generate_dataset, Clip, DatasetConfig};
use tsdx_nn::LrSchedule;
use tsdx_render::RenderConfig;
use tsdx_tensor::{pool, workspace};

fn tiny_model() -> VideoScenarioTransformer {
    VideoScenarioTransformer::new(
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            ..ModelConfig::default()
        },
        7,
    )
}

fn tiny_clips() -> Vec<Clip> {
    generate_dataset(&DatasetConfig {
        n_clips: 8,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    })
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 4,
        schedule: LrSchedule::Constant(1e-3),
        ..TrainConfig::default()
    }
}

/// Trains a fresh model and returns its final parameters as raw bits.
fn trained_param_bits() -> Vec<(String, Vec<u32>)> {
    let clips = tiny_clips();
    let idx: Vec<usize> = (0..clips.len()).collect();
    let mut model = tiny_model();
    train(&mut model, &clips, &idx, &train_cfg());
    model
        .params()
        .iter()
        .map(|(n, t)| (n.to_string(), t.to_vec().iter().map(|v| v.to_bits()).collect()))
        .collect()
}

#[test]
fn training_is_bit_identical_across_workspace_modes_and_pool_sizes() {
    let reference =
        pool::with_forced_threads(1, || workspace::with_mode(false, trained_param_bits));
    for threads in [1usize, 2, 4] {
        for ws in [false, true] {
            if threads == 1 && !ws {
                continue; // the reference run itself
            }
            let run =
                pool::with_forced_threads(threads, || workspace::with_mode(ws, trained_param_bits));
            assert_eq!(reference.len(), run.len(), "parameter count diverged");
            for ((rn, rb), (cn, cb)) in reference.iter().zip(&run) {
                assert_eq!(rn, cn, "parameter order diverged (threads={threads}, ws={ws})");
                assert_eq!(
                    rb, cb,
                    "parameter {rn} not bit-identical at threads={threads}, workspace={ws}"
                );
            }
        }
    }
}
