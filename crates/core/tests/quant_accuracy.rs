//! The int8 inference plane's accuracy gate.
//!
//! Two contracts:
//!
//! 1. **f32 is untouched**: under the f32 dial, extraction is bit-identical
//!    whether or not the model carries prepacked int8 weights — quantizing
//!    must never perturb the full-precision plane (`scripts/check.sh`
//!    additionally runs the whole streaming-parity suite under
//!    `TSDX_PRECISION=int8` and relies on this test to pin the default).
//! 2. **int8 tracks f32**: on a trained model at the table-2 evaluation
//!    scale (the default `ModelConfig`), int8 extraction metrics stay
//!    within a declared epsilon of the f32 metrics, and the two planes
//!    agree on the large majority of individual head predictions.

use tsdx_core::precision::{self, Precision};
use tsdx_core::{
    evaluate, predict_labels, ClipModel, ModelConfig, ScenarioExtractor, TrainConfig,
    VideoScenarioTransformer,
};
use tsdx_data::{generate_dataset, DatasetConfig};

/// Declared accuracy budget for the int8 plane at the table-2 scale:
/// per-head accuracy/F1 may move by at most this much.
const EPSILON: f32 = 0.03;
/// Minimum fraction of individual head predictions the two planes must
/// agree on.
const MIN_AGREEMENT: f32 = 0.9;

fn window_bits(ex: &ScenarioExtractor, video: &tsdx_tensor::Tensor) -> Vec<u32> {
    let mut s = ex.open_stream();
    s.push_frames(video).expect("well-formed video");
    let l = s.logits().expect("full window");
    [&l.ego, &l.road, &l.event, &l.position, &l.presence]
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn f32_plane_is_bit_identical_with_and_without_packed_weights() {
    let video = tsdx_tensor::Tensor::from_fn(&[8, 32, 32], |i| ((i as f32) * 0.0041).sin() * 0.5);
    let ex = ScenarioExtractor::untrained(ModelConfig::default(), 11);
    precision::with_forced(Precision::F32, || {
        let before = window_bits(&ex, &video);
        // Prepacking the int8 plane must not perturb a single f32 bit.
        let report = ex.quantize();
        assert!(report.matrices > 0 && report.packed_bytes > 0, "nothing quantized: {report}");
        let after = window_bits(&ex, &video);
        assert_eq!(before, after, "quantize() changed f32 extraction bits");

        // And a twin model that never quantized agrees too.
        let twin = ScenarioExtractor::untrained(ModelConfig::default(), 11);
        assert_eq!(before, window_bits(&twin, &video), "f32 plane depends on quantization state");
    });
}

#[test]
fn quantize_is_idempotent_and_invalidated_by_mutation() {
    let mut ex = ScenarioExtractor::untrained(ModelConfig::default(), 3);
    let a = ex.quantize();
    let b = ex.quantize();
    assert_eq!(a, b, "repeated quantize() must report the same plane");
    // Mutating the parameters drops the packed plane; re-quantizing
    // rebuilds it at the same size.
    let _ = ex.model_mut().params_mut();
    let c = ex.quantize();
    assert_eq!(a, c, "rebuilt plane should cover the same matrices");
}

#[test]
fn int8_metrics_within_epsilon_of_f32_at_table2_scale() {
    // A short fit at the default (table-2) model scale: enough training
    // for confident logits with real margins — the quantization deltas are
    // then measured against a meaningful decision boundary rather than
    // argmax ties of a random model.
    let clips = generate_dataset(&DatasetConfig { n_clips: 48, ..DatasetConfig::default() });
    let mut ex = ScenarioExtractor::untrained(ModelConfig::default(), 0);
    ex.fit(
        &clips,
        &TrainConfig { epochs: 4, batch_size: 16, verbose: false, ..TrainConfig::default() },
    );
    ex.quantize();
    let model: &VideoScenarioTransformer = ex.model();
    let idx: Vec<usize> = (0..clips.len()).collect();

    let f32_eval = precision::with_forced(Precision::F32, || evaluate(model, &clips, &idx));
    let i8_eval = precision::with_forced(Precision::Int8, || evaluate(model, &clips, &idx));

    let pairs = [
        ("ego", f32_eval.ego_acc, i8_eval.ego_acc),
        ("road", f32_eval.road_acc, i8_eval.road_acc),
        ("event", f32_eval.event_acc, i8_eval.event_acc),
        ("position", f32_eval.position_acc, i8_eval.position_acc),
        ("presence-F1", f32_eval.presence_f1, i8_eval.presence_f1),
        ("mean", f32_eval.mean_accuracy(), i8_eval.mean_accuracy()),
    ];
    for (name, f, q) in pairs {
        eprintln!("{name}: f32 {f:.4} int8 {q:.4}");
        assert!(
            (f - q).abs() <= EPSILON,
            "{name} moved {:.4} under int8 (budget {EPSILON}): f32 {f:.4} vs int8 {q:.4}",
            (f - q).abs()
        );
    }

    // Per-prediction agreement between the planes, across every head.
    let f32_labels = precision::with_forced(Precision::F32, || predict_labels(model, &clips, &idx));
    let i8_labels = precision::with_forced(Precision::Int8, || predict_labels(model, &clips, &idx));
    let mut agree = 0usize;
    let mut total = 0usize;
    for (a, b) in f32_labels.iter().zip(&i8_labels) {
        for (x, y) in
            [(a.ego, b.ego), (a.road, b.road), (a.event, b.event), (a.position, b.position)]
        {
            agree += usize::from(x == y);
            total += 1;
        }
        for (x, y) in a.presence.iter().zip(&b.presence) {
            agree += usize::from(x == y);
            total += 1;
        }
    }
    let rate = agree as f32 / total as f32;
    eprintln!("plane agreement: {agree}/{total} = {rate:.4}");
    assert!(rate >= MIN_AGREEMENT, "planes agree on only {rate:.3} of predictions");
}
