//! Streaming sessions are bit-identical to full recompute, window by window.
//!
//! The parity contract of `StreamSession` (see `crates/core/src/session.rs`)
//! is that sliding over a long video and reading out head logits after each
//! new group produces **exactly** the bits a from-scratch forward pass over
//! the same window produces — for every readout, attention kind, pool size,
//! and workspace mode. The reference here is a *fresh* session per window,
//! which is the same single forward path `extract_checked` uses, so the two
//! public entry points cannot drift apart either.
//!
//! Bitwise equality (via `f32::to_bits`) is deliberate: the caches reuse
//! per-group spatial outputs and CLS key/value rows, and any reassociation
//! of the arithmetic would show up as a one-ulp wobble long before it
//! became a wrong label.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use tsdx_core::precision::{self, Precision};
use tsdx_core::{
    encode_staged, AttentionKind, ModelConfig, Readout, ScenarioExtractor, StreamState,
    WindowLogits,
};
use tsdx_tensor::{pool, workspace, Tensor};

fn tiny_cfg(attention: AttentionKind, readout: Readout) -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        mlp_ratio: 2,
        dropout: 0.0,
        attention,
        readout,
    }
}

/// A long synthetic video `[frames, 16, 16]` with smoothly varying content
/// so no two windows are identical.
fn long_video(frames: usize, seed: f32) -> Tensor {
    Tensor::from_fn(&[frames, 16, 16], |i| ((i as f32 * 0.0137) + seed).sin() * 0.5)
}

/// Frames `[start, start + len)` of `video` as a standalone `[len, H, W]`
/// tensor.
fn slice_frames(video: &Tensor, start: usize, len: usize) -> Tensor {
    let sh = video.shape();
    let frame = sh[1] * sh[2];
    Tensor::from_vec(
        video.data()[start * frame..(start + len) * frame].to_vec(),
        &[len, sh[1], sh[2]],
    )
}

/// Full-recompute reference: a fresh session fed exactly one window — the
/// same forward path as `extract_checked`, with no warm caches to reuse.
fn reference_logits(ex: &ScenarioExtractor, window: &Tensor) -> WindowLogits {
    let mut s = ex.open_stream();
    s.push_frames(window).expect("well-formed window");
    s.logits().expect("full window")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(a: &WindowLogits, b: &WindowLogits, ctx: &str) {
    for (name, x, y) in [
        ("ego", &a.ego, &b.ego),
        ("road", &a.road, &b.road),
        ("event", &a.event, &b.event),
        ("position", &a.position, &b.position),
        ("presence", &a.presence, &b.presence),
    ] {
        assert_eq!(bits(x), bits(y), "{name} logits diverged ({ctx})");
    }
}

/// Streams `video` into a session chunk by chunk; after every chunk that
/// completes at least one group and fills a window, compares the session's
/// logits against a fresh full recompute of the same window.
fn check_schedule(ex: &ScenarioExtractor, video: &Tensor, chunks: &[usize], ctx: &str) {
    let cfg = *ex.model().config();
    let mut session = ex.open_stream();
    let mut fed = 0usize;
    let mut windows_checked = 0usize;
    for (ci, &n) in chunks.iter().enumerate() {
        let chunk = slice_frames(video, fed, n);
        session.push_frames(&chunk).expect("well-formed chunk");
        fed += n;
        let Some((start, end)) = session.window_groups() else { continue };
        let streamed = session.logits().expect("ready session");
        let start_frame = start as usize * cfg.tubelet_t;
        assert_eq!(end as usize * cfg.tubelet_t, (fed / cfg.tubelet_t) * cfg.tubelet_t);
        let window = slice_frames(video, start_frame, cfg.frames);
        let full = reference_logits(ex, &window);
        assert_bit_identical(
            &streamed,
            &full,
            &format!("{ctx}, chunk {ci}, window {start}..{end}"),
        );
        windows_checked += 1;
    }
    assert!(windows_checked > 0, "schedule never produced a full window ({ctx})");
    assert_eq!(fed, chunks.iter().sum::<usize>());
}

#[test]
fn sliding_sessions_match_full_recompute_across_threads_and_workspace_modes() {
    // 20 frames = 10 groups = 7 overlapping windows at stride 1 group; the
    // schedule mixes whole windows, single frames, and group-straddling
    // chunks so pending-buffer bookkeeping is exercised too.
    let chunks = [4usize, 1, 2, 3, 2, 1, 1, 2, 4];
    let video = long_video(20, 0.3);
    for threads in [1usize, 2] {
        for ws in [false, true] {
            pool::with_forced_threads(threads, || {
                workspace::with_mode(ws, || {
                    for attention in [AttentionKind::Factorized, AttentionKind::Joint] {
                        for readout in [Readout::Cls, Readout::MeanPool] {
                            let ex = ScenarioExtractor::untrained(tiny_cfg(attention, readout), 11);
                            let ctx = format!(
                                "threads={threads}, workspace={ws}, {attention:?}/{readout:?}"
                            );
                            check_schedule(&ex, &video, &chunks, &ctx);
                        }
                    }
                })
            });
        }
    }
}

#[test]
fn multiplexed_batched_encodes_match_independent_sessions_across_dials() {
    // N interleaved streams whose group encodes go through the cross-stream
    // batched scheduler path (`stage_frames` + one `encode_staged` per
    // tick) must be bit-identical to N independent self-encoding sessions —
    // under every pool size, workspace mode, and precision plane. This is
    // the invariant the serving layer's mixed batch queue rests on.
    let n = 3usize;
    let chunks = [2usize, 3, 1, 2, 2, 2]; // group-aligned and straddling pushes
    for threads in [1usize, 2] {
        for ws in [false, true] {
            for plane in [Precision::F32, Precision::Int8] {
                pool::with_forced_threads(threads, || {
                    workspace::with_mode(ws, || {
                        precision::with_forced(plane, || {
                            for attention in [AttentionKind::Factorized, AttentionKind::Joint] {
                                let ctx = format!(
                                    "threads={threads}, workspace={ws}, plane={plane:?}, \
                                     {attention:?}"
                                );
                                let ex = ScenarioExtractor::untrained(
                                    tiny_cfg(attention, Readout::Cls),
                                    47,
                                );
                                let model = ex.model();
                                let videos: Vec<Tensor> =
                                    (0..n).map(|s| long_video(12, s as f32 * 0.9 + 0.1)).collect();
                                let mut muxed: Vec<StreamState> =
                                    (0..n).map(|_| StreamState::new(*model.config())).collect();
                                let mut solo: Vec<_> = (0..n).map(|_| ex.open_stream()).collect();
                                let mut fed = 0usize;
                                for &len in &chunks {
                                    for s in 0..n {
                                        let chunk = slice_frames(&videos[s], fed, len);
                                        muxed[s].stage_frames(&chunk).unwrap();
                                        solo[s].push_frames(&chunk).unwrap();
                                    }
                                    fed += len;
                                    let mut refs: Vec<&mut StreamState> =
                                        muxed.iter_mut().collect();
                                    let report = encode_staged(model, &mut refs);
                                    assert!(
                                        report.streams == n || report.groups == 0,
                                        "all streams push in lockstep ({ctx}): {report:?}"
                                    );
                                    for s in 0..n {
                                        assert_eq!(
                                            muxed[s].ready(),
                                            solo[s].ready(),
                                            "readiness diverged ({ctx}, stream {s})"
                                        );
                                        if muxed[s].ready() {
                                            let a = muxed[s].logits(model).unwrap();
                                            let b = solo[s].logits().unwrap();
                                            assert_bit_identical(
                                                &a,
                                                &b,
                                                &format!("{ctx}, stream {s}, fed {fed}"),
                                            );
                                        }
                                    }
                                }
                            }
                        })
                    })
                });
            }
        }
    }
}

#[test]
fn streamed_windows_match_extract_checked_labels() {
    // The decoded scenario — not just the raw logits — must agree with the
    // one-shot public API on every window of a longer stream.
    let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 23);
    let cfg = *ex.model().config();
    let video = long_video(12, 1.7);
    let mut session = ex.open_stream();
    for start in (0..=video.shape()[0] - cfg.frames).step_by(cfg.tubelet_t) {
        let upto = start + cfg.frames;
        let already = session.frames_seen() as usize;
        session.push_frames(&slice_frames(&video, already, upto - already)).unwrap();
        let window = slice_frames(&video, start, cfg.frames);
        assert_eq!(
            session.describe().unwrap(),
            ex.extract_checked(&window).unwrap(),
            "window starting at frame {start}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random push schedules (chunk sizes 1..=7) slide a session over a
    // random-phase video; every full window must match full recompute
    // bit for bit. Windows land on arbitrary stride/overlap patterns
    // depending on where chunks happen to complete groups.
    #[test]
    fn random_chunk_schedules_preserve_bitwise_parity(
        chunks in pvec(1usize..=7, 4..8),
        seed in 0.0f32..10.0,
    ) {
        // >= 4 chunks of >= 1 frame guarantees at least one full window.
        let total: usize = chunks.iter().sum();
        let ex = ScenarioExtractor::untrained(
            tiny_cfg(AttentionKind::Factorized, Readout::Cls),
            31,
        );
        let video = long_video(total, seed);
        let ctx = format!("chunks={chunks:?}, seed={seed}");
        // `check_schedule` asserts at least one window was produced, which
        // holds because total >= frames and every frame is eventually fed.
        check_schedule(&ex, &video, &chunks, &ctx);
    }
}
