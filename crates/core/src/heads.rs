//! Multi-task SDL decoding heads and the combined training loss.

use rand::Rng;
use tsdx_data::{Batch, POSITION_COUNT};
use tsdx_nn::{Binding, Linear, ParamStore};
use tsdx_sdl::{vocab, ActorKind, EgoManeuver, RoadKind};
use tsdx_tensor::{Graph, Var};

/// Logit variables of all five heads for one batch.
#[derive(Debug, Clone, Copy)]
pub struct HeadLogits {
    /// Ego maneuver logits `[B, 7]`.
    pub ego: Var,
    /// Road kind logits `[B, 4]`.
    pub road: Var,
    /// Primary event logits `[B, 13]`.
    pub event: Var,
    /// Position logits `[B, 5]`.
    pub position: Var,
    /// Actor presence logits `[B, 3]` (sigmoid semantics).
    pub presence: Var,
}

/// Relative loss weights of the heads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossWeights {
    /// Weight of the ego cross-entropy.
    pub ego: f32,
    /// Weight of the road cross-entropy.
    pub road: f32,
    /// Weight of the event cross-entropy.
    pub event: f32,
    /// Weight of the position cross-entropy.
    pub position: f32,
    /// Weight of the presence BCE.
    pub presence: f32,
}

impl Default for LossWeights {
    /// Equal weights except a lighter presence term (it is the easiest
    /// head and otherwise dominates early training).
    fn default() -> Self {
        LossWeights { ego: 1.0, road: 1.0, event: 1.0, position: 0.5, presence: 0.5 }
    }
}

/// The five linear decoding heads on top of a clip embedding.
#[derive(Debug, Clone)]
pub struct SdlHeads {
    ego: Linear,
    road: Linear,
    event: Linear,
    position: Linear,
    presence: Linear,
}

impl SdlHeads {
    /// Registers all heads for a `dim`-wide clip embedding.
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, dim: usize) -> Self {
        SdlHeads {
            ego: Linear::new(store, rng, &format!("{name}.ego"), dim, EgoManeuver::COUNT),
            road: Linear::new(store, rng, &format!("{name}.road"), dim, RoadKind::COUNT),
            event: Linear::new(store, rng, &format!("{name}.event"), dim, vocab::EVENT_COUNT),
            position: Linear::new(store, rng, &format!("{name}.position"), dim, POSITION_COUNT),
            presence: Linear::new(store, rng, &format!("{name}.presence"), dim, ActorKind::COUNT),
        }
    }

    /// Applies all heads to a clip embedding `[B, D]`.
    pub fn forward(&self, g: &mut Graph, p: &Binding, embedding: Var) -> HeadLogits {
        HeadLogits {
            ego: self.ego.forward(g, p, embedding),
            road: self.road.forward(g, p, embedding),
            event: self.event.forward(g, p, embedding),
            position: self.position.forward(g, p, embedding),
            presence: self.presence.forward(g, p, embedding),
        }
    }
}

/// Combined multi-task loss for one batch (scalar variable).
pub fn multitask_loss(g: &mut Graph, logits: &HeadLogits, batch: &Batch, w: &LossWeights) -> Var {
    let ego = g.cross_entropy(logits.ego, &batch.ego);
    let road = g.cross_entropy(logits.road, &batch.road);
    let event = g.cross_entropy(logits.event, &batch.event);
    let position = g.cross_entropy(logits.position, &batch.position);
    let presence = g.bce_logits(logits.presence, &batch.presence);

    let ego = g.scale(ego, w.ego);
    let road = g.scale(road, w.road);
    let event = g.scale(event, w.event);
    let position = g.scale(position, w.position);
    let presence = g.scale(presence, w.presence);
    let a = g.add(ego, road);
    let b = g.add(event, position);
    let ab = g.add(a, b);
    g.add(ab, presence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_tensor::Tensor;

    fn dummy_batch(b: usize) -> Batch {
        Batch {
            videos: Tensor::zeros(&[b, 1, 1, 1]),
            ego: vec![0; b],
            road: vec![1; b],
            event: vec![vocab::EVENT_NONE; b],
            position: vec![tsdx_data::POSITION_NONE; b],
            presence: Tensor::zeros(&[b, 3]),
        }
    }

    #[test]
    fn heads_produce_correct_widths() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let heads = SdlHeads::new(&mut store, &mut rng, "h", 16);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let emb = g.constant(Tensor::zeros(&[3, 16]));
        let out = heads.forward(&mut g, &p, emb);
        assert_eq!(g.shape(out.ego), &[3, EgoManeuver::COUNT]);
        assert_eq!(g.shape(out.road), &[3, RoadKind::COUNT]);
        assert_eq!(g.shape(out.event), &[3, vocab::EVENT_COUNT]);
        assert_eq!(g.shape(out.position), &[3, POSITION_COUNT]);
        assert_eq!(g.shape(out.presence), &[3, ActorKind::COUNT]);
    }

    #[test]
    fn loss_is_finite_scalar_and_differentiable() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let heads = SdlHeads::new(&mut store, &mut rng, "h", 8);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let emb = g.constant(Tensor::from_fn(&[2, 8], |i| (i as f32 * 0.1).sin()));
        let logits = heads.forward(&mut g, &p, emb);
        let batch = dummy_batch(2);
        let loss = multitask_loss(&mut g, &logits, &batch, &LossWeights::default());
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        assert!(collected.iter().any(|t| t.data().iter().any(|&x| x != 0.0)));
    }

    #[test]
    fn zero_weights_remove_terms() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let heads = SdlHeads::new(&mut store, &mut rng, "h", 8);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let emb = g.constant(Tensor::zeros(&[2, 8]));
        let logits = heads.forward(&mut g, &p, emb);
        let batch = dummy_batch(2);
        let zero = LossWeights { ego: 0.0, road: 0.0, event: 0.0, position: 0.0, presence: 0.0 };
        let loss = multitask_loss(&mut g, &logits, &batch, &zero);
        assert_eq!(g.value(loss).item(), 0.0);
    }
}
