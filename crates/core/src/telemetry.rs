//! Structured JSONL training telemetry.
//!
//! [`train_resilient`](crate::train_resilient) emits one JSON object per
//! line describing the run: steps, losses, learning rates, gradient norms,
//! skipped-batch and backoff events, checkpoint write latency, and the
//! final outcome. The stream is machine-readable (one `event`-tagged object
//! per line, stable schema asserted by `crates/core/tests/telemetry_log.rs`)
//! so dashboards and scripts can tail a run without scraping stderr.
//!
//! # Control
//!
//! `TSDX_LOG` selects the level, read **once** at the first logger
//! construction: `off` (default — no file is created, no syscalls), `info`
//! (run/epoch/checkpoint/fault events), `debug` (additionally one `step`
//! event per optimizer step). Files go to `results/logs/<model>-<pid>.jsonl`.
//! Setting [`ResilienceConfig::log_path`](crate::ResilienceConfig) overrides
//! both: events are written to the given path at `debug` level regardless of
//! the environment, which is what tests use to stay independent of ambient
//! variables.
//!
//! # Event schema
//!
//! | `event` | level | fields |
//! |---|---|---|
//! | `train_start` | info | `model`, `epochs`, `batch_size`, `clips` |
//! | `resume` | info | `epoch`, `step` |
//! | `step` | debug | `step`, `epoch`, `loss`, `lr`, `grad_norm` (null when clipping is off) |
//! | `skip` | info | `step`, `loss`, `consecutive`, `lr_scale` |
//! | `epoch` | info | `epoch`, `loss`, `batches`, `skipped` |
//! | `checkpoint` | info | `epoch`, `step`, `path`, `write_ms` |
//! | `diverged` | info | `step`, `consecutive` |
//! | `train_end` | info | `epochs`, `steps`, `skipped`, `final_loss` |
//!
//! Non-finite floats serialize as `null` (JSON has no NaN). Writes are
//! best-effort: an unwritable log never fails or slows training more than
//! the write itself.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Verbosity of the JSONL training log, from `TSDX_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No log file at all (the default).
    Off,
    /// Run-level events: start/end, epochs, checkpoints, faults.
    Info,
    /// Everything, including one event per optimizer step.
    Debug,
}

impl LogLevel {
    /// The level configured by `TSDX_LOG` (`off`/`info`/`debug`,
    /// case-insensitive; unset or unrecognized means [`LogLevel::Off`]).
    /// Read once per process.
    pub fn from_env() -> LogLevel {
        static LEVEL: OnceLock<LogLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            match std::env::var("TSDX_LOG").unwrap_or_default().trim().to_ascii_lowercase().as_str()
            {
                "info" => LogLevel::Info,
                "debug" => LogLevel::Debug,
                _ => LogLevel::Off,
            }
        })
    }
}

/// A JSON value formatter for the few shapes the log needs.
enum Val<'a> {
    Str(&'a str),
    U64(u64),
    F32(f32),
    OptF32(Option<f32>),
}

fn push_json(buf: &mut String, v: &Val<'_>) {
    match v {
        Val::Str(s) => {
            buf.push('"');
            for c in s.chars() {
                match c {
                    '"' => buf.push_str("\\\""),
                    '\\' => buf.push_str("\\\\"),
                    '\n' => buf.push_str("\\n"),
                    '\r' => buf.push_str("\\r"),
                    '\t' => buf.push_str("\\t"),
                    c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
                    c => buf.push(c),
                }
            }
            buf.push('"');
        }
        Val::U64(n) => buf.push_str(&n.to_string()),
        Val::F32(x) | Val::OptF32(Some(x)) => {
            if x.is_finite() {
                buf.push_str(&format!("{x}"));
                // `{}` on f32 omits the point for integral values; keep the
                // field unambiguously a JSON number either way.
            } else {
                buf.push_str("null");
            }
        }
        Val::OptF32(None) => buf.push_str("null"),
    }
}

/// Best-effort JSONL writer for one training run.
///
/// Construct with [`TrainLogger::for_run`]; every `event` method is a no-op
/// (no allocation, no I/O) when the logger is disabled.
#[derive(Debug)]
pub struct TrainLogger {
    out: Option<BufWriter<fs::File>>,
    level: LogLevel,
}

impl TrainLogger {
    /// Opens the log for a training run of `model`.
    ///
    /// With `path` set (from `ResilienceConfig::log_path`) the file is
    /// created there and the level is forced to [`LogLevel::Debug`];
    /// otherwise the level comes from `TSDX_LOG` and the file goes to
    /// `results/logs/<model>-<pid>.jsonl`. A disabled logger touches the
    /// filesystem not at all.
    pub fn for_run(model: &str, path: Option<&Path>) -> TrainLogger {
        let (level, path) = match path {
            Some(p) => (LogLevel::Debug, p.to_path_buf()),
            None => {
                let level = LogLevel::from_env();
                if level == LogLevel::Off {
                    return TrainLogger { out: None, level };
                }
                let dir = PathBuf::from("results").join("logs");
                (level, dir.join(format!("{model}-{}.jsonl", std::process::id())))
            }
        };
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let out = fs::File::create(&path).ok().map(BufWriter::new);
        TrainLogger { out, level }
    }

    /// A logger that records nothing.
    pub fn disabled() -> TrainLogger {
        TrainLogger { out: None, level: LogLevel::Off }
    }

    /// True when `step` events will be written.
    pub fn step_level(&self) -> bool {
        self.out.is_some() && self.level >= LogLevel::Debug
    }

    fn write(&mut self, event: &str, fields: &[(&str, Val<'_>)]) {
        let Some(out) = self.out.as_mut() else { return };
        let mut line = String::with_capacity(96);
        line.push_str("{\"event\":");
        push_json(&mut line, &Val::Str(event));
        for (k, v) in fields {
            line.push(',');
            push_json(&mut line, &Val::Str(k));
            line.push(':');
            push_json(&mut line, v);
        }
        line.push('}');
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// Run header.
    pub fn train_start(&mut self, model: &str, epochs: usize, batch_size: usize, clips: usize) {
        self.write(
            "train_start",
            &[
                ("model", Val::Str(model)),
                ("epochs", Val::U64(epochs as u64)),
                ("batch_size", Val::U64(batch_size as u64)),
                ("clips", Val::U64(clips as u64)),
            ],
        );
    }

    /// A checkpoint restore happened before the first epoch of this run.
    pub fn resume(&mut self, epoch: usize, step: u32) {
        self.write("resume", &[("epoch", Val::U64(epoch as u64)), ("step", Val::U64(step.into()))]);
    }

    /// One optimizer step (debug level only).
    pub fn step(&mut self, step: u32, epoch: usize, loss: f32, lr: f32, grad_norm: Option<f32>) {
        if self.level < LogLevel::Debug {
            return;
        }
        self.write(
            "step",
            &[
                ("step", Val::U64(step.into())),
                ("epoch", Val::U64(epoch as u64)),
                ("loss", Val::F32(loss)),
                ("lr", Val::F32(lr)),
                ("grad_norm", Val::OptF32(grad_norm)),
            ],
        );
    }

    /// A non-finite batch was skipped by the guard.
    pub fn skip(&mut self, step: u32, loss: f32, consecutive: u32, lr_scale: f32) {
        self.write(
            "skip",
            &[
                ("step", Val::U64(step.into())),
                ("loss", Val::F32(loss)),
                ("consecutive", Val::U64(consecutive.into())),
                ("lr_scale", Val::F32(lr_scale)),
            ],
        );
    }

    /// End-of-epoch summary.
    pub fn epoch(&mut self, epoch: usize, loss: f32, batches: usize, skipped: u32) {
        self.write(
            "epoch",
            &[
                ("epoch", Val::U64(epoch as u64)),
                ("loss", Val::F32(loss)),
                ("batches", Val::U64(batches as u64)),
                ("skipped", Val::U64(skipped.into())),
            ],
        );
    }

    /// A checkpoint was written in `write_ms` milliseconds.
    pub fn checkpoint(&mut self, epoch: usize, step: u32, path: &Path, write_ms: f32) {
        let shown = path.to_string_lossy();
        self.write(
            "checkpoint",
            &[
                ("epoch", Val::U64(epoch as u64)),
                ("step", Val::U64(step.into())),
                ("path", Val::Str(&shown)),
                ("write_ms", Val::F32(write_ms)),
            ],
        );
    }

    /// The guard gave up: too many consecutive bad batches.
    pub fn diverged(&mut self, step: u32, consecutive: u32) {
        self.write(
            "diverged",
            &[("step", Val::U64(step.into())), ("consecutive", Val::U64(consecutive.into()))],
        );
    }

    /// Run footer.
    pub fn train_end(&mut self, epochs: usize, steps: u32, skipped: u32, final_loss: Option<f32>) {
        self.write(
            "train_end",
            &[
                ("epochs", Val::U64(epochs as u64)),
                ("steps", Val::U64(steps.into())),
                ("skipped", Val::U64(skipped.into())),
                ("final_loss", Val::OptF32(final_loss)),
            ],
        );
    }
}

/// Runs `f`, returning its result and the elapsed milliseconds.
pub(crate) fn timed_ms<R>(f: impl FnOnce() -> R) -> (R, f32) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f32() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_specials() {
        let mut s = String::new();
        push_json(&mut s, &Val::Str("a\"b\\c\nd\te\u{1}"));
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        push_json(&mut s, &Val::F32(f32::NAN));
        assert_eq!(s, "null");
        let mut s = String::new();
        push_json(&mut s, &Val::F32(1.5));
        assert_eq!(s, "1.5");
        let mut s = String::new();
        push_json(&mut s, &Val::OptF32(None));
        assert_eq!(s, "null");
    }

    #[test]
    fn disabled_logger_writes_nowhere() {
        let mut log = TrainLogger::disabled();
        log.train_start("m", 1, 1, 1);
        log.step(0, 0, 1.0, 1e-3, None);
        log.train_end(1, 1, 0, Some(1.0));
        assert!(!log.step_level());
    }

    #[test]
    fn explicit_path_forces_debug_and_writes_jsonl() {
        let path =
            std::env::temp_dir().join(format!("tsdx-telemetry-unit-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut log = TrainLogger::for_run("test-model", Some(&path));
        assert!(log.step_level());
        log.train_start("test-model", 2, 4, 8);
        log.step(0, 0, 0.75, 1e-3, Some(2.5));
        log.train_end(2, 1, 0, Some(0.75));
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"event\":\"train_start\""));
        assert!(lines[1].contains("\"grad_norm\":2.5"));
        assert!(lines[2].contains("\"final_loss\":0.75"));
        let _ = std::fs::remove_file(&path);
    }
}
