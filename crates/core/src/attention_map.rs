//! Attention introspection: where does the model look?
//!
//! Produces per-tubelet saliency from the last spatial-attention block —
//! the qualitative "the model attends to the crossing pedestrian" evidence
//! that accompanies video-transformer papers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_tensor::{ops, Graph, Tensor};

use crate::config::Readout;
use crate::model::VideoScenarioTransformer;
use crate::tubelet::extract_tubelets;

impl VideoScenarioTransformer {
    /// Computes a spatial saliency map `[B, nt, ns]` for a video batch:
    /// how much the clip readout attends to each tubelet, averaged over
    /// heads, from the last spatial (or joint) attention block.
    ///
    /// Rows sum to 1 over `ns` for CLS readout.
    pub fn attention_map(&self, videos: &Tensor) -> Tensor {
        let cfg = *self.config();
        let b = videos.shape()[0];
        let (nt, ns) = (cfg.n_time(), cfg.n_space());

        let mut g = Graph::new();
        let p = self.params_ref().bind_frozen(&mut g);
        let mut rng = StdRng::seed_from_u64(0);
        let tubs = g.constant(extract_tubelets(&cfg, videos));
        let tokens = self.embed_ref().forward(&mut g, &p, tubs);
        let attn = self.encoder_ref().forward_attention(&mut g, &p, tokens, &mut rng);
        let attn = g.value(attn).clone();

        // attn shape: [N, H, T, T] where (N, T) depend on the variant.
        let sh = attn.shape().to_vec();
        let (n, h, t) = (sh[0], sh[1], sh[2]);
        let has_cls = cfg.readout == Readout::Cls;

        // Head-mean: [N, T, T].
        let head_mean = ops::scale(&ops::sum_axis(&attn, 1, false), 1.0 / h as f32);

        // Readout-query attention over content tokens: [N, content].
        let content = if has_cls { t - 1 } else { t };
        let per_query = if has_cls {
            // CLS row, dropping the CLS->CLS column.
            let row = ops::narrow(&head_mean, 1, 0, 1); // [N, 1, T]
            ops::narrow(&row.reshape(&[n, t]), 1, 1, content)
        } else {
            // Mean attention received by each token (column mean).
            ops::scale(&ops::sum_axis(&head_mean, 1, false), 1.0 / t as f32)
        };

        // Joint: one row of nt*ns tokens per clip; factorized: B*nt rows
        // of ns tokens. Both flatten to the same [B, nt, ns] grid.
        per_query.reshape(&[b, nt, ns])
    }
}

impl VideoScenarioTransformer {
    /// Computes temporal saliency `[B, nt]`: how much the clip readout
    /// attends to each time group. Only available for factorized encoders;
    /// returns `None` for joint attention.
    pub fn temporal_attention_map(&self, videos: &Tensor) -> Option<Tensor> {
        let cfg = *self.config();
        let b = videos.shape()[0];
        let nt = cfg.n_time();

        let mut g = Graph::new();
        let p = self.params_ref().bind_frozen(&mut g);
        let mut rng = StdRng::seed_from_u64(0);
        let tubs = g.constant(extract_tubelets(&cfg, videos));
        let tokens = self.embed_ref().forward(&mut g, &p, tubs);
        let attn = self.encoder_ref().forward_temporal_attention(&mut g, &p, tokens, &mut rng)?;
        let attn = g.value(attn).clone();

        let sh = attn.shape().to_vec();
        let (n, h, t) = (sh[0], sh[1], sh[2]);
        let has_cls = cfg.readout == Readout::Cls;
        let head_mean = ops::scale(&ops::sum_axis(&attn, 1, false), 1.0 / h as f32);
        let per_query = if has_cls {
            let row = ops::narrow(&head_mean, 1, 0, 1);
            ops::narrow(&row.reshape(&[n, t]), 1, 1, t - 1)
        } else {
            ops::scale(&ops::sum_axis(&head_mean, 1, false), 1.0 / t as f32)
        };
        Some(per_query.reshape(&[b, nt]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttentionKind, ModelConfig};

    fn cfg(attention: AttentionKind, readout: Readout) -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            dropout: 0.0,
            attention,
            readout,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn attention_map_shape_and_normalization() {
        for attention in [AttentionKind::Factorized, AttentionKind::Joint] {
            let model = VideoScenarioTransformer::new(cfg(attention, Readout::Cls), 0);
            let videos = Tensor::from_fn(&[2, 4, 16, 16], |i| (i % 9) as f32 / 9.0);
            let map = model.attention_map(&videos);
            assert_eq!(map.shape(), &[2, 2, 4], "{attention:?}");
            // CLS attention over content tokens plus the CLS->CLS share
            // sums to 1, so each row sums to at most 1 and is non-negative.
            for row in map.data().chunks(4) {
                let s: f32 = row.iter().sum();
                assert!(s > 0.0 && s <= 1.0 + 1e-4, "row sum {s}");
                assert!(row.iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn temporal_map_shape_for_factorized_none_for_joint() {
        let factorized =
            VideoScenarioTransformer::new(cfg(AttentionKind::Factorized, Readout::Cls), 3);
        let videos = Tensor::from_fn(&[2, 4, 16, 16], |i| (i % 5) as f32 / 5.0);
        let map =
            factorized.temporal_attention_map(&videos).expect("factorized has temporal stage");
        assert_eq!(map.shape(), &[2, 2]);
        for row in map.data().chunks(2) {
            let s: f32 = row.iter().sum();
            assert!(s > 0.0 && s <= 1.0 + 1e-4);
        }
        let joint = VideoScenarioTransformer::new(cfg(AttentionKind::Joint, Readout::Cls), 3);
        assert!(joint.temporal_attention_map(&videos).is_none());
    }

    #[test]
    fn meanpool_variant_also_works() {
        let model =
            VideoScenarioTransformer::new(cfg(AttentionKind::Factorized, Readout::MeanPool), 1);
        let videos = Tensor::zeros(&[1, 4, 16, 16]);
        let map = model.attention_map(&videos);
        assert_eq!(map.shape(), &[1, 2, 4]);
        assert!(!map.has_non_finite());
    }
}
