//! Analytic compute-cost model (multiply-accumulates per clip).
//!
//! Used by the Fig. 4 ablation to report the factorized-vs-joint attention
//! cost difference without relying on wall-clock noise.

use crate::config::{AttentionKind, ModelConfig};

/// Multiply-accumulate estimate for one transformer block over a sequence
/// of `t` tokens of width `d` with MLP ratio `m`.
fn block_macs(t: usize, d: usize, m: usize) -> u64 {
    let t = t as u64;
    let d = d as u64;
    let m = m as u64;
    // QKV + output projections: 4 * t * d^2.
    let proj = 4 * t * d * d;
    // Attention scores and context: 2 * t^2 * d.
    let attn = 2 * t * t * d;
    // MLP: 2 * t * d * (m*d).
    let mlp = 2 * t * d * m * d;
    proj + attn + mlp
}

/// Estimated multiply-accumulates for one clip forward pass.
pub fn clip_macs(cfg: &ModelConfig) -> u64 {
    let nt = cfg.n_time() as u64;
    let ns = cfg.n_space();
    let d = cfg.dim;
    let cls = 1usize;
    let embed = (nt * ns as u64) * (cfg.tubelet_volume() as u64) * d as u64;
    let encoder = match cfg.attention {
        AttentionKind::Factorized => {
            let spatial = nt * cfg.spatial_depth as u64 * block_macs(ns + cls, d, cfg.mlp_ratio);
            let temporal =
                cfg.temporal_depth as u64 * block_macs(cfg.n_time() + cls, d, cfg.mlp_ratio);
            spatial + temporal
        }
        AttentionKind::Joint => {
            let depth = (cfg.spatial_depth + cfg.temporal_depth) as u64;
            depth * block_macs(cfg.n_time() * ns + cls, d, cfg.mlp_ratio)
        }
    };
    // Heads are negligible but included for completeness.
    let heads = (d * (7 + 4 + 13 + 5 + 3)) as u64;
    embed + encoder + heads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn joint_attention_costs_more_than_factorized() {
        let f = ModelConfig { attention: AttentionKind::Factorized, ..ModelConfig::default() };
        let j = ModelConfig { attention: AttentionKind::Joint, ..ModelConfig::default() };
        let (mf, mj) = (clip_macs(&f), clip_macs(&j));
        assert!(mj > mf, "joint ({mj}) should exceed factorized ({mf})");
    }

    #[test]
    fn cost_grows_with_resolution_and_frames() {
        let base = ModelConfig::default();
        let hi = ModelConfig { height: 64, width: 64, ..base };
        assert!(clip_macs(&hi) > clip_macs(&base));
        let long = ModelConfig { frames: 16, ..base };
        assert!(clip_macs(&long) > clip_macs(&base));
    }

    #[test]
    fn joint_gap_widens_with_sequence_length() {
        // The factorized saving grows as nt*ns grows.
        let small_f = ModelConfig::default();
        let small_j = ModelConfig { attention: AttentionKind::Joint, ..small_f };
        let big_f = ModelConfig { frames: 16, height: 64, width: 64, ..small_f };
        let big_j = ModelConfig { attention: AttentionKind::Joint, ..big_f };
        let small_ratio = clip_macs(&small_j) as f64 / clip_macs(&small_f) as f64;
        let big_ratio = clip_macs(&big_j) as f64 / clip_macs(&big_f) as f64;
        assert!(big_ratio > small_ratio, "{small_ratio} vs {big_ratio}");
    }
}
