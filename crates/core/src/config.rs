//! Model configuration.

/// How the encoder attends over space and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKind {
    /// ViViT "model 2": a spatial encoder per frame group followed by a
    /// temporal encoder over per-frame summaries. Cost grows with
    /// `nt·ns² + nt²` instead of `(nt·ns)²`.
    Factorized,
    /// A single encoder over all spatio-temporal tokens (ViViT "model 1").
    Joint,
}

/// How the clip embedding is read out of the final token sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Readout {
    /// A learned classification token.
    Cls,
    /// Mean pooling over tokens.
    MeanPool,
}

/// Hyper-parameters of the video scenario transformer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Frames per clip.
    pub frames: usize,
    /// Frame height (px).
    pub height: usize,
    /// Frame width (px).
    pub width: usize,
    /// Temporal extent of a tubelet (frames).
    pub tubelet_t: usize,
    /// Spatial extent of a tubelet (px, square).
    pub patch: usize,
    /// Token embedding width.
    pub dim: usize,
    /// Depth of the spatial encoder (or the whole encoder when joint).
    pub spatial_depth: usize,
    /// Depth of the temporal encoder (ignored when joint).
    pub temporal_depth: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: usize,
    /// Dropout probability during training.
    pub dropout: f32,
    /// Space-time attention structure.
    pub attention: AttentionKind,
    /// Clip readout strategy.
    pub readout: Readout,
}

impl Default for ModelConfig {
    /// The evaluation default: 8×32×32 clips, 2×8×8 tubelets, width 64,
    /// 2+2 factorized encoder with CLS readout.
    ///
    /// Dropout defaults to 0: at this model scale it slows convergence far
    /// more than it regularizes; horizontal-flip data augmentation carries
    /// the regularization instead (see DESIGN.md calibration notes).
    fn default() -> Self {
        ModelConfig {
            frames: 8,
            height: 32,
            width: 32,
            tubelet_t: 2,
            patch: 8,
            dim: 64,
            spatial_depth: 2,
            temporal_depth: 2,
            heads: 4,
            mlp_ratio: 2,
            dropout: 0.0,
            attention: AttentionKind::Factorized,
            readout: Readout::Cls,
        }
    }
}

impl ModelConfig {
    /// Number of tubelet groups along time.
    pub fn n_time(&self) -> usize {
        self.frames / self.tubelet_t
    }

    /// Number of spatial tokens per tubelet group.
    pub fn n_space(&self) -> usize {
        (self.height / self.patch) * (self.width / self.patch)
    }

    /// Flattened tubelet volume (input width of the embedding projection).
    pub fn tubelet_volume(&self) -> usize {
        self.tubelet_t * self.patch * self.patch
    }

    /// Checks divisibility and size constraints.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.frames == 0 || self.height == 0 || self.width == 0 {
            return Err("clip dimensions must be positive".into());
        }
        if self.tubelet_t == 0 || !self.frames.is_multiple_of(self.tubelet_t) {
            return Err(format!("tubelet_t {} must divide frames {}", self.tubelet_t, self.frames));
        }
        if self.patch == 0
            || !self.height.is_multiple_of(self.patch)
            || !self.width.is_multiple_of(self.patch)
        {
            return Err(format!(
                "patch {} must divide frame size {}x{}",
                self.patch, self.height, self.width
            ));
        }
        if self.heads == 0 || !self.dim.is_multiple_of(self.heads) {
            return Err(format!("heads {} must divide dim {}", self.heads, self.dim));
        }
        if self.spatial_depth == 0 {
            return Err("spatial_depth must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout {} out of range", self.dropout));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = ModelConfig::default();
        c.validate().unwrap();
        assert_eq!(c.n_time(), 4);
        assert_eq!(c.n_space(), 16);
        assert_eq!(c.tubelet_volume(), 128);
    }

    #[test]
    fn validation_catches_bad_divisibility() {
        let bad = [
            ModelConfig { tubelet_t: 3, ..ModelConfig::default() },
            ModelConfig { patch: 5, ..ModelConfig::default() },
            ModelConfig { heads: 5, ..ModelConfig::default() },
            ModelConfig { dropout: 1.0, ..ModelConfig::default() },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
        }
    }
}
