//! Shared training loop and evaluation harness for all [`ClipModel`]s.
//!
//! Training is fault-tolerant by default (see [`train_resilient`]): a batch
//! whose loss or gradients are non-finite is skipped instead of corrupting
//! the parameters, repeated bad batches back off the learning rate, and the
//! loop can periodically write crash-safe checkpoints that a later run
//! resumes from **bit-identically** — an interrupted-then-resumed run ends
//! with exactly the parameters of an uninterrupted one.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_data::{collate, epoch_batches, Clip, ClipLabels};
use tsdx_metrics::{accuracy, macro_f1, multilabel_report};
use tsdx_nn::{
    clip_global_norm, read_train_checkpoint, save_train_checkpoint, AdamW, CheckpointError,
    LrSchedule, Optimizer, TrainCheckpoint, TrainState,
};
use tsdx_sdl::{vocab, ActorKind, EgoManeuver};

use crate::heads::{multitask_loss, LossWeights};
use crate::model::{decode_logits, ClipModel};
use crate::telemetry::{timed_ms, TrainLogger};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule (per optimizer step).
    pub schedule: LrSchedule,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
    /// Head loss weights.
    pub loss_weights: LossWeights,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            schedule: LrSchedule::WarmupCosine { base: 1e-3, warmup: 20, total: 400, min: 5e-5 },
            weight_decay: 1e-4,
            clip_norm: 5.0,
            seed: 0,
            loss_weights: LossWeights::default(),
            verbose: false,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch (over non-skipped batches; only the
    /// epochs this call actually ran, so a resumed run reports the tail).
    pub epoch_losses: Vec<f32>,
    /// Optimizer steps taken (including skipped bad batches, which still
    /// advance the schedule).
    pub steps: u32,
    /// Batches skipped by the non-finite guard.
    pub skipped_steps: u32,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Fault-tolerance policy for [`train_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Where periodic checkpoints go (`None` disables checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Epochs between checkpoints (a checkpoint is always written after the
    /// final epoch when a path is set; values below 1 behave like 1).
    pub checkpoint_every: usize,
    /// Resume from `checkpoint` when it exists (a missing file starts
    /// fresh, so the same invocation works for the first and every later
    /// attempt).
    pub resume: bool,
    /// Skip batches whose loss or gradients are non-finite instead of
    /// corrupting the parameters. Disable only for overhead measurements.
    pub guard: bool,
    /// Abort with [`TrainError::Diverged`] after this many *consecutive*
    /// skipped batches.
    pub max_consecutive_bad: u32,
    /// Learning-rate multiplier applied on every repeated consecutive bad
    /// batch (bounded below by `min_lr_scale`; recovers by doubling per
    /// good step back to 1.0).
    pub backoff: f32,
    /// Floor for the backoff scale.
    pub min_lr_scale: f32,
    /// Explicit JSONL telemetry destination. `None` (the default) defers to
    /// `TSDX_LOG` and the standard `results/logs/` location; `Some(path)`
    /// writes debug-level events to `path` regardless of the environment
    /// (see [`crate::TrainLogger`]).
    pub log_path: Option<PathBuf>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint: None,
            checkpoint_every: 1,
            resume: false,
            guard: true,
            max_consecutive_bad: 16,
            backoff: 0.5,
            min_lr_scale: 1.0 / 64.0,
            log_path: None,
        }
    }
}

impl ResilienceConfig {
    /// Checkpoints to `path` every epoch, without resuming.
    pub fn checkpoint_to(path: impl Into<PathBuf>) -> Self {
        ResilienceConfig { checkpoint: Some(path.into()), ..ResilienceConfig::default() }
    }

    /// Checkpoints to `path` every epoch **and** resumes from it when it
    /// already exists — the standard configuration for unattended runs.
    pub fn resume_from(path: impl Into<PathBuf>) -> Self {
        ResilienceConfig {
            checkpoint: Some(path.into()),
            resume: true,
            ..ResilienceConfig::default()
        }
    }
}

/// Error terminating a resilient training run.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainError {
    /// Saving or restoring a checkpoint failed.
    Checkpoint(CheckpointError),
    /// Too many consecutive non-finite batches: the run is not recoverable
    /// by skipping (bad data or a genuinely diverged model).
    Diverged {
        /// Step at which the limit was exceeded.
        step: u32,
        /// Consecutive bad batches observed.
        consecutive: u32,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "training checkpoint failed: {e}"),
            TrainError::Diverged { step, consecutive } => write!(
                f,
                "training diverged: {consecutive} consecutive non-finite batches at step {step}"
            ),
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Diverged { .. } => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Trains `model` on `clips[train_idx]` in place.
///
/// Equivalent to [`train_resilient`] with the default
/// [`ResilienceConfig`] (non-finite batches are skipped, no
/// checkpointing); in a fault-free run the parameter trajectory is
/// bit-identical to the pre-guard loop.
///
/// # Panics
///
/// Panics if the training set is empty or the run diverges beyond the
/// guard's consecutive-bad-batch limit.
pub fn train(
    model: &mut dyn ClipModel,
    clips: &[Clip],
    train_idx: &[usize],
    cfg: &TrainConfig,
) -> TrainReport {
    train_resilient(model, clips, train_idx, cfg, &ResilienceConfig::default())
        .unwrap_or_else(|e| panic!("training failed: {e}"))
}

/// Trains `model` on `clips[train_idx]` in place, tolerating bad batches
/// and process death.
///
/// * **Non-finite guard** — when `r.guard` is set, a batch whose loss or
///   collected gradients contain NaN/Inf is skipped: parameters and
///   optimizer moments are untouched, the schedule still advances.
///   Repeated consecutive bad batches multiply the learning rate by
///   `r.backoff` (bounded by `r.min_lr_scale`); good steps double it back
///   up to 1.0. More than `r.max_consecutive_bad` bad batches in a row is
///   [`TrainError::Diverged`].
/// * **Checkpointing** — with `r.checkpoint` set, a crash-safe checkpoint
///   (parameters, optimizer moments, RNG state, guard state) is written
///   after every `r.checkpoint_every`-th epoch and after the final one.
/// * **Resume** — with `r.resume` set and the checkpoint present, training
///   continues from the recorded epoch. The restored run consumes the
///   identical shuffle/dropout stream and optimizer state, so the final
///   parameters are **bit-identical** to a never-interrupted run, at any
///   pool size (`tests/resume_training.rs` asserts this).
///
/// # Errors
///
/// [`TrainError::Checkpoint`] on checkpoint I/O, format, or shape errors;
/// [`TrainError::Diverged`] when skipping cannot save the run.
///
/// # Panics
///
/// Panics if the training set is empty.
pub fn train_resilient(
    model: &mut dyn ClipModel,
    clips: &[Clip],
    train_idx: &[usize],
    cfg: &TrainConfig,
    r: &ResilienceConfig,
) -> Result<TrainReport, TrainError> {
    assert!(!train_idx.is_empty(), "empty training set");
    let mut opt = AdamW::new(cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut step: u32 = 0;
    let mut start_epoch: usize = 0;
    let mut lr_scale: f32 = 1.0;
    let mut consecutive_bad: u32 = 0;
    let mut skipped: u32 = 0;
    let mut log = TrainLogger::for_run(model.name(), r.log_path.as_deref());
    log.train_start(model.name(), cfg.epochs, cfg.batch_size, train_idx.len());

    if r.resume {
        let path = r.checkpoint.as_ref().expect("resume requires a checkpoint path");
        if path.exists() {
            let ck = read_train_checkpoint(path)?;
            model.params_mut().try_load_named(&ck.params).map_err(|m| {
                CheckpointError::ShapeMismatch {
                    name: m.name,
                    expected: m.expected,
                    found: m.found,
                }
            })?;
            if let Some(state) = ck.opt {
                opt.import_state(state);
            }
            if let Some(s) = ck.state.rng {
                rng = StdRng::from_state(s);
            }
            start_epoch = ck.state.epoch as usize;
            step = ck.state.step;
            lr_scale = ck.state.lr_scale;
            consecutive_bad = ck.state.consecutive_bad;
            skipped = ck.state.skipped_steps;
            log.resume(start_epoch, step);
            if cfg.verbose {
                eprintln!(
                    "[{}] resumed from {} at epoch {start_epoch}, step {step}",
                    model.name(),
                    path.display()
                );
            }
        }
    }

    let skipped_at_start = skipped;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs.saturating_sub(start_epoch));
    for epoch in start_epoch..cfg.epochs {
        let batches = epoch_batches(clips, train_idx, cfg.batch_size, &mut rng);
        let mut loss_sum = 0.0;
        let mut good_batches = 0usize;
        for batch in &batches {
            let mut g = tsdx_tensor::Graph::new();
            let binding = model.params().bind(&mut g);
            let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, true);
            let loss = multitask_loss(&mut g, &logits, batch, &cfg.loss_weights);
            let loss_val = g.value(loss).item();
            let grads = g.backward(loss);
            let mut collected = model.params().collect_grads(&binding, &grads);
            #[cfg(feature = "fault-inject")]
            if tsdx_tensor::faults::nan_grad_at(step) {
                collected[0] = tsdx_tensor::Tensor::full(collected[0].shape(), f32::NAN);
            }
            if r.guard && (!loss_val.is_finite() || collected.iter().any(|t| t.has_non_finite())) {
                skipped += 1;
                consecutive_bad += 1;
                if consecutive_bad > r.max_consecutive_bad {
                    log.diverged(step, consecutive_bad);
                    return Err(TrainError::Diverged { step, consecutive: consecutive_bad });
                }
                if consecutive_bad > 1 {
                    lr_scale = (lr_scale * r.backoff).max(r.min_lr_scale);
                }
                log.skip(step, loss_val, consecutive_bad, lr_scale);
                if cfg.verbose {
                    eprintln!(
                        "[{}] step {step}: non-finite batch skipped ({consecutive_bad} in a \
                         row, lr scale {lr_scale})",
                        model.name()
                    );
                }
                step += 1;
                continue;
            }
            consecutive_bad = 0;
            lr_scale = (lr_scale * 2.0).min(1.0);
            loss_sum += loss_val;
            good_batches += 1;
            let mut grad_norm = None;
            if cfg.clip_norm > 0.0 {
                grad_norm = Some(clip_global_norm(&mut collected, cfg.clip_norm));
            }
            let lr = cfg.schedule.lr(step) * lr_scale;
            opt.step(model.params_mut(), &collected, lr);
            log.step(step, epoch, loss_val, lr, grad_norm);
            step += 1;
        }
        let mean = loss_sum / good_batches.max(1) as f32;
        epoch_losses.push(mean);
        log.epoch(epoch, mean, good_batches, skipped - skipped_at_start);
        if cfg.verbose {
            eprintln!("[{}] epoch {epoch:>3}: loss {mean:.4}", model.name());
        }
        if let Some(path) = &r.checkpoint {
            let done = epoch + 1;
            if done % r.checkpoint_every.max(1) == 0 || done == cfg.epochs {
                let ckpt = TrainCheckpoint {
                    state: TrainState {
                        epoch: done as u32,
                        step,
                        lr_scale,
                        consecutive_bad,
                        skipped_steps: skipped,
                        rng: Some(rng.state()),
                    },
                    params: model
                        .params()
                        .iter()
                        .map(|(n, t)| (n.to_string(), t.clone()))
                        .collect(),
                    opt: Some(opt.export_state(model.params())),
                };
                let (saved, write_ms) = timed_ms(|| save_train_checkpoint(&ckpt, path));
                saved?;
                log.checkpoint(done, step, path, write_ms);
            }
        }
    }
    log.train_end(cfg.epochs, step, skipped - skipped_at_start, epoch_losses.last().copied());
    Ok(TrainReport { epoch_losses, steps: step, skipped_steps: skipped - skipped_at_start })
}

/// Per-head evaluation summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// Ego-maneuver accuracy.
    pub ego_acc: f32,
    /// Ego-maneuver macro-F1.
    pub ego_f1: f32,
    /// Road-kind accuracy.
    pub road_acc: f32,
    /// Primary-event accuracy.
    pub event_acc: f32,
    /// Primary-event macro-F1.
    pub event_f1: f32,
    /// Position accuracy.
    pub position_acc: f32,
    /// Actor-presence micro-F1 (threshold 0.5).
    pub presence_f1: f32,
    /// Number of evaluated clips.
    pub n: usize,
}

impl EvalSummary {
    /// Unweighted mean of the four classification accuracies (the single
    /// scalar used in ablation figures).
    pub fn mean_accuracy(&self) -> f32 {
        (self.ego_acc + self.road_acc + self.event_acc + self.position_acc) / 4.0
    }
}

impl std::fmt::Display for EvalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} ego {:.1}% (F1 {:.1}%) road {:.1}% event {:.1}% (F1 {:.1}%) pos {:.1}% presence-F1 {:.1}% | mean {:.1}%",
            self.n,
            self.ego_acc * 100.0,
            self.ego_f1 * 100.0,
            self.road_acc * 100.0,
            self.event_acc * 100.0,
            self.event_f1 * 100.0,
            self.position_acc * 100.0,
            self.presence_f1 * 100.0,
            self.mean_accuracy() * 100.0
        )
    }
}

/// Runs batched inference, returning decoded labels per clip.
pub fn predict_labels(model: &dyn ClipModel, clips: &[Clip], idx: &[usize]) -> Vec<ClipLabels> {
    let mut out = Vec::with_capacity(idx.len());
    let mut rng = StdRng::seed_from_u64(0);
    for chunk in idx.chunks(16) {
        let refs: Vec<&Clip> = chunk.iter().map(|&i| &clips[i]).collect();
        let batch = collate(&refs);
        let mut g = tsdx_tensor::Graph::new();
        let binding = model.bind_eval(&mut g);
        let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, false);
        out.extend(decode_logits(
            g.value(logits.ego),
            g.value(logits.road),
            g.value(logits.event),
            g.value(logits.position),
            g.value(logits.presence),
        ));
    }
    out
}

/// Evaluates `model` on `clips[idx]`.
///
/// # Panics
///
/// Panics on an empty index set.
pub fn evaluate(model: &dyn ClipModel, clips: &[Clip], idx: &[usize]) -> EvalSummary {
    assert!(!idx.is_empty(), "empty evaluation set");
    let predictions = predict_labels(model, clips, idx);
    summarize(&predictions, &idx.iter().map(|&i| clips[i].labels.clone()).collect::<Vec<_>>())
}

/// Computes an [`EvalSummary`] from aligned prediction/truth label lists.
pub fn summarize(predictions: &[ClipLabels], truths: &[ClipLabels]) -> EvalSummary {
    assert_eq!(predictions.len(), truths.len(), "prediction/truth mismatch");
    let take = |f: fn(&ClipLabels) -> usize, xs: &[ClipLabels]| -> Vec<usize> {
        xs.iter().map(f).collect()
    };
    let p_ego = take(|l| l.ego, predictions);
    let t_ego = take(|l| l.ego, truths);
    let p_road = take(|l| l.road, predictions);
    let t_road = take(|l| l.road, truths);
    let p_event = take(|l| l.event, predictions);
    let t_event = take(|l| l.event, truths);
    let p_pos = take(|l| l.position, predictions);
    let t_pos = take(|l| l.position, truths);

    let scores: Vec<f32> = predictions.iter().flat_map(|l| l.presence).collect();
    let targets: Vec<f32> = truths.iter().flat_map(|l| l.presence).collect();
    let ml = multilabel_report(&scores, &targets, ActorKind::COUNT, 0.5);

    EvalSummary {
        ego_acc: accuracy(&p_ego, &t_ego),
        ego_f1: macro_f1(&p_ego, &t_ego, EgoManeuver::COUNT),
        road_acc: accuracy(&p_road, &t_road),
        event_acc: accuracy(&p_event, &t_event),
        event_f1: macro_f1(&p_event, &t_event, vocab::EVENT_COUNT),
        position_acc: accuracy(&p_pos, &t_pos),
        presence_f1: ml.micro_f1,
        n: predictions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::VideoScenarioTransformer;
    use tsdx_data::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn tiny_model() -> VideoScenarioTransformer {
        VideoScenarioTransformer::new(
            ModelConfig {
                frames: 4,
                height: 16,
                width: 16,
                tubelet_t: 2,
                patch: 8,
                dim: 16,
                spatial_depth: 1,
                temporal_depth: 1,
                heads: 2,
                mlp_ratio: 2,
                dropout: 0.0,
                ..ModelConfig::default()
            },
            3,
        )
    }

    fn tiny_clips(n: usize) -> Vec<Clip> {
        generate_dataset(&DatasetConfig {
            n_clips: n,
            render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn training_reduces_loss_on_small_set() {
        let mut model = tiny_model();
        let clips = tiny_clips(16);
        let idx: Vec<usize> = (0..16).collect();
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 8,
            schedule: LrSchedule::Constant(3e-3),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &clips, &idx, &cfg);
        assert_eq!(report.epoch_losses.len(), 12);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first * 0.7, "training did not reduce loss: {first:.3} -> {last:.3}");
        assert!(last.is_finite());
    }

    #[test]
    fn evaluate_reports_sane_ranges() {
        let model = tiny_model();
        let clips = tiny_clips(12);
        let idx: Vec<usize> = (0..12).collect();
        let s = evaluate(&model, &clips, &idx);
        assert_eq!(s.n, 12);
        for v in [s.ego_acc, s.road_acc, s.event_acc, s.position_acc, s.presence_f1, s.ego_f1] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        assert!((0.0..=1.0).contains(&s.mean_accuracy()));
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tsdx-train-test-{name}-{}.ckpt", std::process::id()))
    }

    fn params_of(model: &VideoScenarioTransformer) -> Vec<(String, Vec<f32>)> {
        model.params().iter().map(|(n, t)| (n.to_string(), t.to_vec())).collect()
    }

    #[test]
    fn interrupted_and_resumed_run_is_bit_identical() {
        let clips = tiny_clips(12);
        let idx: Vec<usize> = (0..12).collect();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 4,
            schedule: LrSchedule::Constant(2e-3),
            ..TrainConfig::default()
        };

        // Uninterrupted reference run.
        let mut full = tiny_model();
        train(&mut full, &clips, &idx, &cfg);

        // Interrupted run: stop after 2 epochs (checkpointing each), then
        // resume into a model with a *different* init seed — every weight
        // must come from the checkpoint.
        let path = tmp("resume");
        std::fs::remove_file(&path).ok();
        let mut first = tiny_model();
        let half_cfg = TrainConfig { epochs: 2, ..cfg };
        train_resilient(
            &mut first,
            &clips,
            &idx,
            &half_cfg,
            &ResilienceConfig::checkpoint_to(&path),
        )
        .unwrap();

        let mut resumed = VideoScenarioTransformer::new(
            ModelConfig {
                frames: 4,
                height: 16,
                width: 16,
                tubelet_t: 2,
                patch: 8,
                dim: 16,
                spatial_depth: 1,
                temporal_depth: 1,
                heads: 2,
                mlp_ratio: 2,
                dropout: 0.0,
                ..ModelConfig::default()
            },
            999,
        );
        let report = train_resilient(
            &mut resumed,
            &clips,
            &idx,
            &cfg,
            &ResilienceConfig::resume_from(&path),
        )
        .unwrap();
        assert_eq!(report.epoch_losses.len(), 2, "resumed run covers only the remaining epochs");
        assert_eq!(params_of(&full), params_of(&resumed), "resume must be bit-identical");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_with_completed_checkpoint_is_a_noop() {
        let clips = tiny_clips(8);
        let idx: Vec<usize> = (0..8).collect();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            schedule: LrSchedule::Constant(1e-3),
            ..TrainConfig::default()
        };
        let path = tmp("noop");
        std::fs::remove_file(&path).ok();
        let mut model = tiny_model();
        train_resilient(&mut model, &clips, &idx, &cfg, &ResilienceConfig::checkpoint_to(&path))
            .unwrap();
        let before = params_of(&model);
        let report =
            train_resilient(&mut model, &clips, &idx, &cfg, &ResilienceConfig::resume_from(&path))
                .unwrap();
        assert!(report.epoch_losses.is_empty());
        assert_eq!(report.steps, 4, "step counter restored from the checkpoint");
        assert_eq!(params_of(&model), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn guarded_train_matches_unguarded_when_fault_free() {
        let clips = tiny_clips(8);
        let idx: Vec<usize> = (0..8).collect();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            schedule: LrSchedule::Constant(1e-3),
            ..TrainConfig::default()
        };
        let mut guarded = tiny_model();
        let rg = train_resilient(&mut guarded, &clips, &idx, &cfg, &ResilienceConfig::default())
            .unwrap();
        let mut unguarded = tiny_model();
        let off = ResilienceConfig { guard: false, ..ResilienceConfig::default() };
        let ru = train_resilient(&mut unguarded, &clips, &idx, &cfg, &off).unwrap();
        assert_eq!(rg.skipped_steps, 0);
        assert_eq!(rg.epoch_losses, ru.epoch_losses);
        assert_eq!(params_of(&guarded), params_of(&unguarded), "guard must cost zero drift");
    }

    #[test]
    fn summarize_perfect_predictions() {
        let labels: Vec<ClipLabels> = tiny_clips(6).iter().map(|c| c.labels.clone()).collect();
        let s = summarize(&labels, &labels);
        assert_eq!(s.ego_acc, 1.0);
        assert_eq!(s.event_acc, 1.0);
        assert_eq!(s.presence_f1, 1.0);
    }
}
