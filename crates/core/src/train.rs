//! Shared training loop and evaluation harness for all [`ClipModel`]s.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_data::{collate, epoch_batches, Clip, ClipLabels};
use tsdx_metrics::{accuracy, macro_f1, multilabel_report};
use tsdx_nn::{clip_global_norm, AdamW, LrSchedule, Optimizer};
use tsdx_sdl::{vocab, ActorKind, EgoManeuver};

use crate::heads::{multitask_loss, LossWeights};
use crate::model::{decode_logits, ClipModel};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule (per optimizer step).
    pub schedule: LrSchedule,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
    /// Head loss weights.
    pub loss_weights: LossWeights,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            schedule: LrSchedule::WarmupCosine { base: 1e-3, warmup: 20, total: 400, min: 5e-5 },
            weight_decay: 1e-4,
            clip_norm: 5.0,
            seed: 0,
            loss_weights: LossWeights::default(),
            verbose: false,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Optimizer steps taken.
    pub steps: u32,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Trains `model` on `clips[train_idx]` in place.
pub fn train(
    model: &mut dyn ClipModel,
    clips: &[Clip],
    train_idx: &[usize],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!train_idx.is_empty(), "empty training set");
    let mut opt = AdamW::new(cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut step: u32 = 0;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let batches = epoch_batches(clips, train_idx, cfg.batch_size, &mut rng);
        let mut loss_sum = 0.0;
        for batch in &batches {
            let mut g = tsdx_tensor::Graph::new();
            let binding = model.params().bind(&mut g);
            let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, true);
            let loss = multitask_loss(&mut g, &logits, batch, &cfg.loss_weights);
            loss_sum += g.value(loss).item();
            let grads = g.backward(loss);
            let mut collected = model.params().collect_grads(&binding, &grads);
            if cfg.clip_norm > 0.0 {
                clip_global_norm(&mut collected, cfg.clip_norm);
            }
            let lr = cfg.schedule.lr(step);
            opt.step(model.params_mut(), &collected, lr);
            step += 1;
        }
        let mean = loss_sum / batches.len() as f32;
        epoch_losses.push(mean);
        if cfg.verbose {
            eprintln!("[{}] epoch {epoch:>3}: loss {mean:.4}", model.name());
        }
    }
    TrainReport { epoch_losses, steps: step }
}

/// Per-head evaluation summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// Ego-maneuver accuracy.
    pub ego_acc: f32,
    /// Ego-maneuver macro-F1.
    pub ego_f1: f32,
    /// Road-kind accuracy.
    pub road_acc: f32,
    /// Primary-event accuracy.
    pub event_acc: f32,
    /// Primary-event macro-F1.
    pub event_f1: f32,
    /// Position accuracy.
    pub position_acc: f32,
    /// Actor-presence micro-F1 (threshold 0.5).
    pub presence_f1: f32,
    /// Number of evaluated clips.
    pub n: usize,
}

impl EvalSummary {
    /// Unweighted mean of the four classification accuracies (the single
    /// scalar used in ablation figures).
    pub fn mean_accuracy(&self) -> f32 {
        (self.ego_acc + self.road_acc + self.event_acc + self.position_acc) / 4.0
    }
}

impl std::fmt::Display for EvalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} ego {:.1}% (F1 {:.1}%) road {:.1}% event {:.1}% (F1 {:.1}%) pos {:.1}% presence-F1 {:.1}% | mean {:.1}%",
            self.n,
            self.ego_acc * 100.0,
            self.ego_f1 * 100.0,
            self.road_acc * 100.0,
            self.event_acc * 100.0,
            self.event_f1 * 100.0,
            self.position_acc * 100.0,
            self.presence_f1 * 100.0,
            self.mean_accuracy() * 100.0
        )
    }
}

/// Runs batched inference, returning decoded labels per clip.
pub fn predict_labels(model: &dyn ClipModel, clips: &[Clip], idx: &[usize]) -> Vec<ClipLabels> {
    let mut out = Vec::with_capacity(idx.len());
    let mut rng = StdRng::seed_from_u64(0);
    for chunk in idx.chunks(16) {
        let refs: Vec<&Clip> = chunk.iter().map(|&i| &clips[i]).collect();
        let batch = collate(&refs);
        let mut g = tsdx_tensor::Graph::new();
        let binding = model.params().bind_frozen(&mut g);
        let logits = model.forward(&mut g, &binding, &batch.videos, &mut rng, false);
        out.extend(decode_logits(
            g.value(logits.ego),
            g.value(logits.road),
            g.value(logits.event),
            g.value(logits.position),
            g.value(logits.presence),
        ));
    }
    out
}

/// Evaluates `model` on `clips[idx]`.
///
/// # Panics
///
/// Panics on an empty index set.
pub fn evaluate(model: &dyn ClipModel, clips: &[Clip], idx: &[usize]) -> EvalSummary {
    assert!(!idx.is_empty(), "empty evaluation set");
    let predictions = predict_labels(model, clips, idx);
    summarize(&predictions, &idx.iter().map(|&i| clips[i].labels.clone()).collect::<Vec<_>>())
}

/// Computes an [`EvalSummary`] from aligned prediction/truth label lists.
pub fn summarize(predictions: &[ClipLabels], truths: &[ClipLabels]) -> EvalSummary {
    assert_eq!(predictions.len(), truths.len(), "prediction/truth mismatch");
    let take = |f: fn(&ClipLabels) -> usize, xs: &[ClipLabels]| -> Vec<usize> {
        xs.iter().map(f).collect()
    };
    let p_ego = take(|l| l.ego, predictions);
    let t_ego = take(|l| l.ego, truths);
    let p_road = take(|l| l.road, predictions);
    let t_road = take(|l| l.road, truths);
    let p_event = take(|l| l.event, predictions);
    let t_event = take(|l| l.event, truths);
    let p_pos = take(|l| l.position, predictions);
    let t_pos = take(|l| l.position, truths);

    let scores: Vec<f32> = predictions.iter().flat_map(|l| l.presence).collect();
    let targets: Vec<f32> = truths.iter().flat_map(|l| l.presence).collect();
    let ml = multilabel_report(&scores, &targets, ActorKind::COUNT, 0.5);

    EvalSummary {
        ego_acc: accuracy(&p_ego, &t_ego),
        ego_f1: macro_f1(&p_ego, &t_ego, EgoManeuver::COUNT),
        road_acc: accuracy(&p_road, &t_road),
        event_acc: accuracy(&p_event, &t_event),
        event_f1: macro_f1(&p_event, &t_event, vocab::EVENT_COUNT),
        position_acc: accuracy(&p_pos, &t_pos),
        presence_f1: ml.micro_f1,
        n: predictions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::VideoScenarioTransformer;
    use tsdx_data::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn tiny_model() -> VideoScenarioTransformer {
        VideoScenarioTransformer::new(
            ModelConfig {
                frames: 4,
                height: 16,
                width: 16,
                tubelet_t: 2,
                patch: 8,
                dim: 16,
                spatial_depth: 1,
                temporal_depth: 1,
                heads: 2,
                mlp_ratio: 2,
                dropout: 0.0,
                ..ModelConfig::default()
            },
            3,
        )
    }

    fn tiny_clips(n: usize) -> Vec<Clip> {
        generate_dataset(&DatasetConfig {
            n_clips: n,
            render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn training_reduces_loss_on_small_set() {
        let mut model = tiny_model();
        let clips = tiny_clips(16);
        let idx: Vec<usize> = (0..16).collect();
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 8,
            schedule: LrSchedule::Constant(3e-3),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &clips, &idx, &cfg);
        assert_eq!(report.epoch_losses.len(), 12);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first * 0.7, "training did not reduce loss: {first:.3} -> {last:.3}");
        assert!(last.is_finite());
    }

    #[test]
    fn evaluate_reports_sane_ranges() {
        let model = tiny_model();
        let clips = tiny_clips(12);
        let idx: Vec<usize> = (0..12).collect();
        let s = evaluate(&model, &clips, &idx);
        assert_eq!(s.n, 12);
        for v in [s.ego_acc, s.road_acc, s.event_acc, s.position_acc, s.presence_f1, s.ego_f1] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        assert!((0.0..=1.0).contains(&s.mean_accuracy()));
    }

    #[test]
    fn summarize_perfect_predictions() {
        let labels: Vec<ClipLabels> = tiny_clips(6).iter().map(|c| c.labels.clone()).collect();
        let s = summarize(&labels, &labels);
        assert_eq!(s.ego_acc, 1.0);
        assert_eq!(s.event_acc, 1.0);
        assert_eq!(s.presence_f1, 1.0);
    }
}
