//! Tubelet extraction and embedding.
//!
//! A video `[B, T, H, W]` is cut into non-overlapping spatio-temporal boxes
//! ("tubelets") of `tubelet_t × patch × patch` pixels. Each tubelet is
//! flattened and linearly projected to the model width. Because videos are
//! inputs (no gradient needed), the rearrangement runs as a plain tensor
//! transform; only the projection lives on the autograd tape.
//!
//! Embedding stops at the projection plus the *spatial* position: the
//! temporal position is a window-relative quantity, so it is applied at the
//! temporal-stage boundary by the encoder (see
//! [`ClipEncoder`](crate::ClipEncoder)). That split is what lets a
//! streaming session cache per-group embeddings by absolute frame index —
//! a group's embedding no longer depends on where the group happens to sit
//! inside the current window.

use rand::Rng;
use tsdx_nn::{Binding, Linear, ParamStore};
use tsdx_tensor::{Graph, Tensor, Var};

use crate::config::ModelConfig;

/// Rearranges a video batch `[B, T, H, W]` into flattened tubelets
/// `[B, nt*ns, tubelet_volume]`, in `(time-group, row-major space)` token
/// order, where `nt = T / tubelet_t`.
///
/// `T` may be any positive multiple of `cfg.tubelet_t` — a full window, or
/// a single group of `tubelet_t` frames arriving on a stream.
///
/// # Panics
///
/// Panics if the spatial dimensions disagree with `cfg`, or if `T` is zero
/// or not a multiple of `cfg.tubelet_t`.
pub fn extract_tubelets(cfg: &ModelConfig, videos: &Tensor) -> Tensor {
    let sh = videos.shape();
    assert_eq!(sh.len(), 4, "expected [B, T, H, W] videos");
    assert_eq!(&sh[2..], &[cfg.height, cfg.width], "video shape {:?} does not match config", sh);
    let frames = sh[1];
    let tt = cfg.tubelet_t;
    assert!(
        frames > 0 && frames.is_multiple_of(tt),
        "frame count {frames} is not a positive multiple of tubelet_t ({tt})"
    );
    let b = sh[0];
    let nt = frames / tt;
    let (nh, nw, p) = (cfg.height / cfg.patch, cfg.width / cfg.patch, cfg.patch);
    let ns = nh * nw;
    let vol = cfg.tubelet_volume();
    let (h, w) = (cfg.height, cfg.width);
    let videos = videos.contiguous(); // the pixel gather below indexes the flat buffer
    let src = videos.data();
    let mut out = Vec::with_capacity(b * nt * ns * vol);
    for bi in 0..b {
        let clip = &src[bi * frames * h * w..(bi + 1) * frames * h * w];
        for g in 0..nt {
            for py in 0..nh {
                for px in 0..nw {
                    // One tubelet: frames [g*tt, (g+1)*tt), patch (py, px).
                    for f in 0..tt {
                        let frame = &clip[(g * tt + f) * h * w..(g * tt + f + 1) * h * w];
                        for r in 0..p {
                            let row = (py * p + r) * w + px * p;
                            out.extend_from_slice(&frame[row..row + p]);
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, nt * ns, vol])
}

/// Learned tubelet embedding: projection plus the spatial positional
/// embedding, shared across the batch and across time groups.
///
/// Deliberately *time-invariant*: two groups with identical pixels embed
/// identically regardless of their position in the clip, so streaming
/// sessions can cache group embeddings by absolute index. The temporal
/// position lives in the encoder's temporal stage instead.
#[derive(Debug, Clone)]
pub struct TubeletEmbed {
    proj: Linear,
    /// Spatial positional embedding `[1, ns, D]` (broadcast over time).
    pos_space: tsdx_nn::ParamId,
    n_space: usize,
    dim: usize,
}

impl TubeletEmbed {
    /// Registers the projection and spatial positional parameters.
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, cfg: &ModelConfig) -> Self {
        let proj = Linear::new(store, rng, &format!("{name}.proj"), cfg.tubelet_volume(), cfg.dim);
        let pos_space = store.add(
            format!("{name}.pos_space"),
            tsdx_nn::init::embedding_normal(&[1, cfg.n_space(), cfg.dim], rng),
        );
        TubeletEmbed { proj, pos_space, n_space: cfg.n_space(), dim: cfg.dim }
    }

    /// Embeds pre-extracted tubelets `[B, nt*ns, vol]` to tokens
    /// `[B, nt*ns, D]` with the spatial position added. Accepts any number
    /// of time groups (`nt >= 1`) — the computation is per-group, so a
    /// single streamed group embeds bit-identically to the same group
    /// inside a full window.
    pub fn forward(&self, g: &mut Graph, p: &Binding, tubelets: Var) -> Var {
        let sh = g.shape(tubelets).to_vec();
        let (b, n) = (sh[0], sh[1]);
        assert!(
            n.is_multiple_of(self.n_space),
            "token count {n} is not a multiple of ns ({})",
            self.n_space
        );
        let nt = n / self.n_space;
        // Project to [B, nt*ns, D], then add the spatial position: reshape
        // to [B, nt, ns, D] and add pos_space [1, ns, D] (broadcast over
        // batch and time).
        let tokens = self.proj.forward(g, p, tubelets);
        let grid = g.reshape(tokens, &[b, nt, self.n_space, self.dim]);
        let ps = p.var(self.pos_space);
        let with_space = g.add(grid, ps);
        g.reshape(with_space, &[b, n, self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 8,
            width: 8,
            tubelet_t: 2,
            patch: 4,
            dim: 8,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn tubelet_shapes() {
        let cfg = tiny_cfg();
        let v = Tensor::zeros(&[3, 4, 8, 8]);
        let t = extract_tubelets(&cfg, &v);
        // nt=2, ns=4, vol=32.
        assert_eq!(t.shape(), &[3, 8, 32]);
    }

    #[test]
    fn tubelet_values_come_from_the_right_pixels() {
        let cfg = tiny_cfg();
        // Encode pixel identity: value = f*10000 + r*100 + c.
        let v = Tensor::from_fn(&[1, 4, 8, 8], |i| {
            let f = i / 64;
            let r = (i / 8) % 8;
            let c = i % 8;
            (f * 10000 + r * 100 + c) as f32
        });
        let t = extract_tubelets(&cfg, &v);
        // Token 0 = time group 0 (frames 0..2), patch (0,0).
        // Its first element is frame 0, pixel (0,0) = 0.
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        // Element 16 within token 0 starts frame 1 of the tubelet.
        assert_eq!(t.at(&[0, 0, 16]), 10000.0);
        // Token 1 = patch (0,1): first pixel is (0,4) of frame 0.
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
        // Token 4 = time group 1, patch (0,0): frame 2 pixel (0,0).
        assert_eq!(t.at(&[0, 4, 0]), 20000.0);
    }

    #[test]
    fn partial_windows_extract_the_same_tubelets() {
        // A single streamed group must gather exactly the tokens the full
        // window gathers for that group — the cache-keying contract.
        let cfg = tiny_cfg();
        let v = Tensor::from_fn(&[1, 4, 8, 8], |i| (i as f32 * 0.37).sin());
        let full = extract_tubelets(&cfg, &v);
        let second_group = Tensor::from_vec(v.data()[2 * 64..4 * 64].to_vec(), &[1, 2, 8, 8]);
        let partial = extract_tubelets(&cfg, &second_group);
        assert_eq!(partial.shape(), &[1, 4, 32]);
        for token in 0..4 {
            for e in 0..32 {
                assert_eq!(partial.at(&[0, token, e]), full.at(&[0, 4 + token, e]));
            }
        }
    }

    #[test]
    fn embedding_is_time_invariant_but_space_aware() {
        let cfg = tiny_cfg();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let embed = TubeletEmbed::new(&mut store, &mut rng, "tub", &cfg);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let tubs = g.constant(Tensor::zeros(&[2, 8, 32]));
        let tokens = embed.forward(&mut g, &p, tubs);
        assert_eq!(g.shape(tokens), &[2, 8, 8]);
        // With zero input, output tokens are pure positional embeddings.
        let val = g.value(tokens);
        let t0: Vec<f32> = (0..8).map(|d| val.at(&[0, 0, d])).collect();
        let t1: Vec<f32> = (0..8).map(|d| val.at(&[0, 1, d])).collect();
        let t4: Vec<f32> = (0..8).map(|d| val.at(&[0, 4, d])).collect();
        assert_ne!(t0, t1, "spatial positions must differentiate tokens");
        // Same patch in a different time group embeds identically — the
        // temporal position is applied later, at the temporal stage, so
        // group embeddings are cacheable by absolute index.
        assert_eq!(t0, t4, "tubelet embedding must be time-invariant");
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let cfg = tiny_cfg();
        extract_tubelets(&cfg, &Tensor::zeros(&[1, 4, 8, 10]));
    }

    #[test]
    #[should_panic]
    fn non_multiple_frame_count_panics() {
        let cfg = tiny_cfg();
        extract_tubelets(&cfg, &Tensor::zeros(&[1, 3, 8, 8]));
    }
}
