//! Streaming inference sessions: incremental, cache-aware extraction over
//! continuous frame feeds.
//!
//! A [`StreamSession`] turns the clip-at-a-time extractor into a per-stream
//! object: frames arrive in arbitrary chunks via
//! [`push_frames`](StreamSession::push_frames), and
//! [`describe`](StreamSession::describe) reads out the scenario for the
//! most recent window. Overlapping windows share most of their frames, and
//! the factorized architecture makes that shareable work explicit:
//!
//! * **Tubelet + spatial stage, cached per group.** Every `tubelet_t`
//!   consecutive frames form a time group. The tubelet embedding and the
//!   spatial encoder are free of temporal position (see
//!   [`ClipEncoder::spatial_summaries`](crate::ClipEncoder::spatial_summaries)),
//!   so a group's frame summary depends only on its own pixels and is
//!   cached in a ring keyed by **absolute group index**. Sliding the window
//!   recomputes only newly arrived groups.
//! * **Temporal stage, recomputed per window with CLS key/value reuse.**
//!   Temporal positions are window-relative, so a slid window re-runs the
//!   temporal encoder over the `nt` cached summaries; the position-free CLS
//!   row's key/value projections are served from the previous window's
//!   cache ([`TransformerEncoder::forward_prefix`](tsdx_nn::TransformerEncoder::forward_prefix)).
//! * **Whole-window logits cache.** Asking twice about the same window
//!   costs one lookup.
//!
//! # Stage / consume split for cross-stream batching
//!
//! The per-stream bookkeeping lives in a model-free [`StreamState`]: chunks
//! are **staged** ([`StreamState::stage_frames`] validates and buffers
//! pixels, queueing completed groups without any forward pass), and staged
//! groups are later **consumed** by whoever owns the forward —
//! [`encode_staged`] gathers the staged groups of *many* states and encodes
//! them in one [`VideoScenarioTransformer::encode_group_batch`] call along
//! the batch dimension. The stage is row-independent, so the batched
//! forward is bit-identical per group to encoding each alone; a serving
//! scheduler multiplexing N streams pays one forward per tick instead of N.
//! [`StreamSession`] keeps the original single-stream API by staging and
//! immediately self-consuming on every push.
//!
//! Parity is the contract: a session's head logits are **bit-identical** to
//! a full recompute of the same window (all readouts, pool sizes,
//! workspace modes, and batched-vs-solo group encodes) — pinned by
//! `tests/streaming_parity.rs`. Cache effectiveness is observable through
//! the `stage/cache_hit`, `stage/cache_miss`, and `stage/window_hit`
//! metric counters.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_nn::EncoderKvCache;
use tsdx_sdl::Scenario;
use tsdx_tensor::{metrics, Graph, Tensor};

use crate::config::{AttentionKind, ModelConfig};
use crate::extract::ExtractError;
use crate::model::{decode_logits, VideoScenarioTransformer};
use crate::precision::{self, Precision};

/// One cached time group: the stage outputs that depend only on the
/// group's own pixels.
struct GroupCache {
    /// Absolute group index since the start of the stream (frame index
    /// `index * tubelet_t` onward) — the cache key.
    index: u64,
    /// Factorized: the frame summary `[D]` out of the spatial stage.
    /// Joint: projected, spatially positioned tokens `[ns, D]` (joint
    /// attention offers no deeper position-free boundary).
    data: Tensor,
}

/// A completed time group whose pixels are buffered but not yet encoded —
/// the unit of work a cross-stream scheduler batches.
struct StagedGroup {
    /// Absolute group index (assigned at staging time).
    index: u64,
    /// The group's raw pixels, `tubelet_t * H * W` values.
    pixels: Vec<f32>,
}

/// Head-logit values for one window (batch dimension 1), exposed so parity
/// harnesses and serving layers can compare or post-process raw scores.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowLogits {
    /// Ego-maneuver logits `[1, EgoManeuver::COUNT]`.
    pub ego: Tensor,
    /// Road-kind logits `[1, RoadKind::COUNT]`.
    pub road: Tensor,
    /// Event logits `[1, EVENT_COUNT]`.
    pub event: Tensor,
    /// Actor-position logits `[1, POSITION_COUNT]`.
    pub position: Tensor,
    /// Actor-presence logits `[1, ActorKind::COUNT]`.
    pub presence: Tensor,
}

/// Memoized result for the most recently inferred window.
struct WindowCache {
    /// Exclusive end group index of the window the result belongs to.
    end: u64,
    /// The precision plane the result was computed under — a degrade dial
    /// flip mid-stream must not serve the other plane's memo.
    plane: Precision,
    logits: WindowLogits,
    scenario: Scenario,
}

/// What one [`encode_staged`] call did — occupancy numbers for the
/// scheduler's observability plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MuxEncodeReport {
    /// States that contributed at least one staged group.
    pub streams: usize,
    /// Total groups encoded in the single batched forward.
    pub groups: usize,
}

/// Encodes every staged group across `states` in **one** batched forward
/// and distributes the outputs back into each state's group-cache ring.
///
/// This is the cross-stream amortization point: N streams that each
/// completed a group pay one `encode_group_batch` at batch N instead of N
/// single-group forwards. Row independence of the spatial stage makes the
/// result bit-identical to each state encoding its own groups (pinned by
/// `tests/streaming_parity.rs`). States with nothing staged are skipped;
/// passing an empty slice (or all-idle states) performs no forward at all.
///
/// # Panics
///
/// Panics if any state was created for a different model configuration.
pub fn encode_staged(
    model: &VideoScenarioTransformer,
    states: &mut [&mut StreamState],
) -> MuxEncodeReport {
    let mut owners: Vec<usize> = Vec::new();
    let mut streams = 0usize;
    for (i, s) in states.iter().enumerate() {
        assert_eq!(&s.cfg, model.config(), "stream state configuration does not match the model");
        if !s.staged.is_empty() {
            streams += 1;
            owners.extend(std::iter::repeat_n(i, s.staged.len()));
        }
    }
    if owners.is_empty() {
        return MuxEncodeReport::default();
    }
    let groups: Vec<&[f32]> =
        states.iter().flat_map(|s| s.staged.iter().map(|g| g.pixels.as_slice())).collect();
    let encoded = model.encode_group_batch(&groups);
    let report = MuxEncodeReport { streams, groups: encoded.len() };
    let mut outputs = encoded.into_iter();
    for (i, data) in owners.into_iter().zip(&mut outputs) {
        states[i].consume_encoded(data);
    }
    report
}

/// Per-stream extraction state with no model reference — safe to park in a
/// session table while a scheduler owns the batched forward.
///
/// Methods that need compute take the model explicitly; the configuration
/// is captured at construction and checked against the model on use.
/// [`StreamSession`] wraps one of these with a borrowed model for the
/// simple single-stream API.
pub struct StreamState {
    cfg: ModelConfig,
    /// Frames that do not yet fill a tubelet group, flattened pixel rows;
    /// always shorter than one group. Reused across pushes.
    pending: Vec<f32>,
    /// Completed groups awaiting their spatial encode, oldest first.
    staged: VecDeque<StagedGroup>,
    /// The newest `nt` group caches, oldest first.
    ring: VecDeque<GroupCache>,
    /// Total frames accepted so far.
    frames_seen: u64,
    /// Index the next completed group will receive.
    next_group: u64,
    /// Groups computed since the last inference — the work the cache could
    /// not save for the next window.
    fresh_groups: usize,
    /// Temporal-encoder key/value rows from the previous window.
    temporal_kv: Option<EncoderKvCache>,
    /// The precision plane `temporal_kv` was computed under. A mid-stream
    /// plane flip (e.g. the serve layer degrading to int8 under pressure)
    /// drops the cache instead of mixing planes inside one forward.
    kv_plane: Option<Precision>,
    window: Option<WindowCache>,
}

impl StreamState {
    /// Creates an empty stream state for models of `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        StreamState {
            cfg,
            pending: Vec::new(),
            staged: VecDeque::new(),
            ring: VecDeque::with_capacity(cfg.n_time()),
            frames_seen: 0,
            next_group: 0,
            fresh_groups: 0,
            temporal_kv: None,
            kv_plane: None,
            window: None,
        }
    }

    /// The configuration this state was created for.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Total frames accepted so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Completed groups staged but not yet encoded.
    pub fn staged_groups(&self) -> usize {
        self.staged.len()
    }

    /// Whether a full window of frames has arrived (staged groups count —
    /// they are encoded on demand), i.e. whether describe will succeed.
    pub fn ready(&self) -> bool {
        self.next_group >= self.cfg.n_time() as u64
    }

    /// Absolute group index range `[start, end)` of the current window, or
    /// `None` before the first full window.
    pub fn window_groups(&self) -> Option<(u64, u64)> {
        if !self.ready() {
            return None;
        }
        Some((self.next_group - self.cfg.n_time() as u64, self.next_group))
    }

    /// Validates and buffers a chunk of frames `[n, H, W]`, queueing every
    /// newly completed time group for a later encode — **no forward pass
    /// happens here**. Returns the number of groups staged. Chunk sizes
    /// are arbitrary; `n == 0` is a no-op.
    ///
    /// The caller (a batching scheduler, or [`StreamSession::push_frames`])
    /// consumes the staged groups via [`encode_staged`]; reads like
    /// [`describe`](Self::describe) self-serve any still-staged groups, so
    /// staging never changes observable results — only who pays for the
    /// forward and at what batch size.
    ///
    /// # Errors
    ///
    /// [`ExtractError::BadRank`] unless the chunk is rank 3,
    /// [`ExtractError::BadFrameShape`] unless its spatial dimensions match
    /// the model, and [`ExtractError::NonFinite`] when any pixel is NaN or
    /// infinite (reported with its flat index within the chunk, and the
    /// chunk is rejected whole — session state is unchanged).
    pub fn stage_frames(&mut self, frames: &Tensor) -> Result<usize, ExtractError> {
        let sh = frames.shape().to_vec();
        if sh.len() != 3 {
            return Err(ExtractError::BadRank { found: sh.len() });
        }
        if sh[1] != self.cfg.height || sh[2] != self.cfg.width {
            return Err(ExtractError::BadFrameShape {
                expected: [self.cfg.height, self.cfg.width],
                found: [sh[1], sh[2]],
            });
        }
        if sh[0] == 0 {
            return Ok(0);
        }
        let frames = frames.contiguous();
        let data = frames.data();
        if let Some(index) = data.iter().position(|v| !v.is_finite()) {
            return Err(ExtractError::NonFinite { index });
        }

        let group_len = self.cfg.tubelet_t * self.cfg.height * self.cfg.width;
        self.pending.extend_from_slice(data);
        self.frames_seen += sh[0] as u64;
        let mut completed = 0;
        while self.pending.len() >= group_len {
            let pixels: Vec<f32> = self.pending.drain(..group_len).collect();
            self.staged.push_back(StagedGroup { index: self.next_group, pixels });
            self.next_group += 1;
            completed += 1;
        }
        Ok(completed)
    }

    /// Encodes this state's own staged groups in one batched forward (the
    /// single-stream special case of [`encode_staged`]).
    pub fn encode_staged_groups(&mut self, model: &VideoScenarioTransformer) {
        if !self.staged.is_empty() {
            encode_staged(model, &mut [self]);
        }
    }

    /// Installs one encoded stage output into the ring, in staging order.
    fn consume_encoded(&mut self, data: Tensor) {
        let group = self.staged.pop_front().expect("consume without a staged group");
        debug_assert!(
            self.ring.back().is_none_or(|c| c.index + 1 == group.index),
            "group cache ring must stay contiguous"
        );
        metrics::counter_add("stage/cache_miss", 1);
        if self.ring.len() == self.cfg.n_time() {
            self.ring.pop_front();
        }
        self.ring.push_back(GroupCache { index: group.index, data });
        self.fresh_groups += 1;
    }

    /// Head logits for the window ending at the newest staged group,
    /// bit-identical to a full recompute of that window. Encodes any
    /// still-staged groups first.
    ///
    /// # Errors
    ///
    /// [`ExtractError::TooShort`] before the first full window of frames
    /// has arrived.
    pub fn logits(
        &mut self,
        model: &VideoScenarioTransformer,
    ) -> Result<WindowLogits, ExtractError> {
        self.infer(model).map(|w| w.logits.clone())
    }

    /// The scenario description of the current window (see
    /// [`logits`](Self::logits) for windowing and errors). The returned
    /// scenario always satisfies [`Scenario::validate`].
    pub fn describe(&mut self, model: &VideoScenarioTransformer) -> Result<Scenario, ExtractError> {
        self.infer(model).map(|w| w.scenario.clone())
    }

    /// Ensures `self.window` holds the result for the current window.
    fn infer(&mut self, model: &VideoScenarioTransformer) -> Result<&WindowCache, ExtractError> {
        let cfg = self.cfg;
        let nt = cfg.n_time();
        if !self.ready() {
            return Err(ExtractError::TooShort {
                frames: usize::try_from(self.frames_seen).unwrap_or(usize::MAX),
                min: cfg.frames,
            });
        }
        self.encode_staged_groups(model);
        let end = self.next_group;
        let plane = precision::active();
        if self.window.as_ref().is_some_and(|w| w.end == end && w.plane == plane) {
            // Unchanged window: every group reused, no forward pass at all.
            metrics::counter_add("stage/cache_hit", nt as u64);
            metrics::counter_add("stage/window_hit", 1);
            return Ok(self.window.as_ref().expect("just checked"));
        }
        metrics::counter_add("stage/cache_hit", nt.saturating_sub(self.fresh_groups) as u64);
        self.fresh_groups = 0;
        if self.kv_plane != Some(plane) {
            // Plane flipped since the cached K/V rows were computed: drop
            // them rather than mix planes inside one temporal forward.
            self.temporal_kv = None;
            self.kv_plane = Some(plane);
        }
        let logits = metrics::stage("stage/stream_infer", || self.infer_window(model, &cfg));
        let labels = decode_logits(
            &logits.ego,
            &logits.road,
            &logits.event,
            &logits.position,
            &logits.presence,
        );
        let scenario = labels[0].to_scenario();
        self.window = Some(WindowCache { end, plane, logits, scenario });
        Ok(self.window.as_ref().expect("just set"))
    }

    /// Runs the window-level forward pass over the cached stage outputs.
    fn infer_window(
        &mut self,
        model: &VideoScenarioTransformer,
        cfg: &ModelConfig,
    ) -> WindowLogits {
        let nt = cfg.n_time();
        let mut g = Graph::new();
        let p = model.bind_eval_active(&mut g);
        let emb = match cfg.attention {
            AttentionKind::Factorized => {
                // Assemble the cached frame summaries into [1, nt, D].
                let mut buf = Vec::with_capacity(nt * cfg.dim);
                for c in &self.ring {
                    buf.extend_from_slice(c.data.data());
                }
                let frames = g.constant(Tensor::from_vec(buf, &[1, nt, cfg.dim]));
                let (emb, kv) = model.encoder_ref().temporal_readout_streaming(
                    &mut g,
                    &p,
                    frames,
                    self.temporal_kv.as_ref(),
                );
                self.temporal_kv = Some(kv);
                emb
            }
            AttentionKind::Joint => {
                // Joint attention reruns the whole encoder; only the
                // projection work was cached.
                let ns = cfg.n_space();
                let mut buf = Vec::with_capacity(nt * ns * cfg.dim);
                for c in &self.ring {
                    buf.extend_from_slice(c.data.data());
                }
                let tokens = g.constant(Tensor::from_vec(buf, &[1, nt * ns, cfg.dim]));
                let mut rng = StdRng::seed_from_u64(0);
                model.encoder_ref().forward(&mut g, &p, tokens, &mut rng, false)
            }
        };
        let logits = model.heads_ref().forward(&mut g, &p, emb);
        WindowLogits {
            ego: g.value(logits.ego).clone(),
            road: g.value(logits.road).clone(),
            event: g.value(logits.event).clone(),
            position: g.value(logits.position).clone(),
            presence: g.value(logits.presence).clone(),
        }
    }
}

impl std::fmt::Debug for StreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamState")
            .field("frames_seen", &self.frames_seen)
            .field("cached_groups", &self.ring.len())
            .field("staged_groups", &self.staged.len())
            .field("ready", &self.ready())
            .finish_non_exhaustive()
    }
}

/// An incremental extraction session over one video stream.
///
/// Created by [`ScenarioExtractor::open_stream`](crate::ScenarioExtractor::open_stream);
/// borrows the model immutably, so weights cannot change under a live
/// session (which would invalidate every cache here). A thin wrapper over
/// [`StreamState`] that stages and immediately encodes on every push; a
/// serving scheduler that wants to batch encodes across streams holds bare
/// `StreamState`s instead and drives [`encode_staged`] itself.
///
/// # Examples
///
/// ```
/// use tsdx_core::{ModelConfig, ScenarioExtractor};
/// use tsdx_tensor::Tensor;
///
/// let cfg = ModelConfig {
///     frames: 4, height: 16, width: 16, tubelet_t: 2, patch: 8,
///     dim: 16, spatial_depth: 1, temporal_depth: 1, heads: 2,
///     ..ModelConfig::default()
/// };
/// let extractor = ScenarioExtractor::untrained(cfg, 0);
/// let mut session = extractor.open_stream();
/// // Feed frames as they arrive — chunk sizes are arbitrary.
/// session.push_frames(&Tensor::zeros(&[3, 16, 16])).unwrap();
/// assert!(!session.ready());
/// session.push_frames(&Tensor::zeros(&[1, 16, 16])).unwrap();
/// let scenario = session.describe().unwrap();
/// scenario.validate().unwrap();
/// ```
pub struct StreamSession<'m> {
    model: &'m VideoScenarioTransformer,
    state: StreamState,
}

impl<'m> StreamSession<'m> {
    pub(crate) fn new(model: &'m VideoScenarioTransformer) -> Self {
        StreamSession { model, state: StreamState::new(*model.config()) }
    }

    /// The configuration of the underlying model.
    pub fn config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// Total frames accepted so far.
    pub fn frames_seen(&self) -> u64 {
        self.state.frames_seen()
    }

    /// Whether a full window of frames has arrived, i.e. whether
    /// [`describe`](Self::describe) will succeed.
    pub fn ready(&self) -> bool {
        self.state.ready()
    }

    /// Absolute group index range `[start, end)` of the current window, or
    /// `None` before the first full window.
    pub fn window_groups(&self) -> Option<(u64, u64)> {
        self.state.window_groups()
    }

    /// Feeds a chunk of frames `[n, H, W]` into the stream and returns the
    /// number of newly completed (and therefore newly encoded) time
    /// groups. Chunk sizes are arbitrary; `n == 0` is a no-op.
    ///
    /// Only new groups are encoded — steady-state cost is proportional to
    /// the frames pushed, not to the window length. All groups completed
    /// by one push share a single batched forward
    /// ([`VideoScenarioTransformer::encode_group_batch`]).
    ///
    /// # Errors
    ///
    /// See [`StreamState::stage_frames`]; a rejected chunk leaves session
    /// state unchanged.
    pub fn push_frames(&mut self, frames: &Tensor) -> Result<usize, ExtractError> {
        let completed = self.state.stage_frames(frames)?;
        if completed > 0 {
            metrics::stage("stage/stream_push", || {
                self.state.encode_staged_groups(self.model);
            });
        }
        Ok(completed)
    }

    /// Head logits for the window ending at the newest pushed group,
    /// bit-identical to a full recompute of that window.
    ///
    /// # Errors
    ///
    /// [`ExtractError::TooShort`] before the first full window of frames
    /// has arrived.
    pub fn logits(&mut self) -> Result<WindowLogits, ExtractError> {
        self.state.logits(self.model)
    }

    /// The scenario description of the current window (see
    /// [`logits`](Self::logits) for windowing and errors). The returned
    /// scenario always satisfies [`Scenario::validate`].
    pub fn describe(&mut self) -> Result<Scenario, ExtractError> {
        self.state.describe(self.model)
    }
}

impl std::fmt::Debug for StreamSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession").field("state", &self.state).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Readout;
    use crate::ScenarioExtractor;

    fn tiny_cfg(attention: AttentionKind, readout: Readout) -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            attention,
            readout,
        }
    }

    fn video(frames: usize, seed: f32) -> Tensor {
        Tensor::from_fn(&[frames, 16, 16], |i| ((i as f32 + seed) * 0.013).sin())
    }

    #[test]
    fn session_matches_one_shot_extraction_on_the_first_window() {
        for attention in [AttentionKind::Factorized, AttentionKind::Joint] {
            for readout in [Readout::Cls, Readout::MeanPool] {
                let ex = ScenarioExtractor::untrained(tiny_cfg(attention, readout), 5);
                let v = video(4, 1.0);
                let mut s = ex.open_stream();
                assert_eq!(s.push_frames(&v).unwrap(), 2);
                assert!(s.ready());
                assert_eq!(s.describe().unwrap(), ex.extract(&v), "{attention:?}/{readout:?}");
            }
        }
    }

    #[test]
    fn ragged_chunks_accumulate_like_one_push() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 7);
        let v = video(4, 2.0);
        let mut whole = ex.open_stream();
        whole.push_frames(&v).unwrap();
        let mut ragged = ex.open_stream();
        for i in 0..4 {
            let frame = Tensor::from_vec(v.data()[i * 256..(i + 1) * 256].to_vec(), &[1, 16, 16]);
            ragged.push_frames(&frame).unwrap();
        }
        assert_eq!(whole.frames_seen(), ragged.frames_seen());
        assert_eq!(whole.window_groups(), ragged.window_groups());
        assert_eq!(whole.logits().unwrap(), ragged.logits().unwrap());
    }

    #[test]
    fn sliding_recomputes_only_new_groups() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 9);
        let mut s = ex.open_stream();
        s.push_frames(&video(4, 3.0)).unwrap();
        s.describe().unwrap();
        assert_eq!(s.window_groups(), Some((0, 2)));
        // Slide by one group: exactly one new group is encoded.
        assert_eq!(s.push_frames(&video(2, 9.0)).unwrap(), 1);
        s.describe().unwrap();
        assert_eq!(s.window_groups(), Some((1, 3)));
        assert_eq!(s.frames_seen(), 6);
    }

    #[test]
    fn describe_before_a_full_window_is_a_typed_error() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 1);
        let mut s = ex.open_stream();
        assert_eq!(s.describe(), Err(ExtractError::TooShort { frames: 0, min: 4 }));
        s.push_frames(&video(3, 0.0)).unwrap();
        assert!(!s.ready());
        assert_eq!(s.describe(), Err(ExtractError::TooShort { frames: 3, min: 4 }));
    }

    #[test]
    fn malformed_chunks_are_rejected_without_corrupting_state() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 2);
        let mut s = ex.open_stream();
        assert_eq!(
            s.push_frames(&Tensor::zeros(&[1, 2, 16, 16])),
            Err(ExtractError::BadRank { found: 4 })
        );
        assert_eq!(
            s.push_frames(&Tensor::zeros(&[1, 8, 16])),
            Err(ExtractError::BadFrameShape { expected: [16, 16], found: [8, 16] })
        );
        let mut bad = Tensor::zeros(&[1, 16, 16]);
        bad.set(&[0, 0, 3], f32::NAN);
        assert_eq!(s.push_frames(&bad), Err(ExtractError::NonFinite { index: 3 }));
        // Nothing was buffered by the failed pushes.
        assert_eq!(s.frames_seen(), 0);
        let v = video(4, 5.0);
        s.push_frames(&v).unwrap();
        assert_eq!(s.describe().unwrap(), ex.extract(&v));
    }

    #[test]
    fn repeated_describe_serves_the_cached_window() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 3);
        let mut s = ex.open_stream();
        s.push_frames(&video(4, 7.0)).unwrap();
        let scope = metrics::scope();
        let first = s.describe().unwrap();
        let again = s.describe().unwrap();
        let snap = scope.snapshot();
        drop(scope);
        assert_eq!(first, again);
        assert_eq!(snap.counter("stage/window_hit"), 1);
        // First describe: 2 fresh groups, 0 hits; second: 2 hits.
        assert_eq!(snap.counter("stage/cache_hit"), 2);
    }

    #[test]
    fn staged_state_defers_the_forward_until_consumed() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 4);
        let mut st = StreamState::new(*ex.model().config());
        let v = video(4, 11.0);
        let scope = metrics::scope();
        assert_eq!(st.stage_frames(&v).unwrap(), 2);
        assert_eq!(st.staged_groups(), 2);
        assert!(st.ready(), "staged groups count toward readiness");
        let snap = scope.snapshot();
        drop(scope);
        assert_eq!(snap.counter("stage/cache_miss"), 0, "staging must not encode");
        // Describe self-serves the staged groups and matches one-shot.
        assert_eq!(st.describe(ex.model()).unwrap(), ex.extract(&v));
        assert_eq!(st.staged_groups(), 0);
    }

    #[test]
    fn cross_stream_batched_encode_is_bit_identical_to_solo() {
        let ex = ScenarioExtractor::untrained(tiny_cfg(AttentionKind::Factorized, Readout::Cls), 6);
        let vids: Vec<Tensor> = (0..3).map(|i| video(4, 20.0 + i as f32)).collect();
        // Independent sessions, each encoding its own groups.
        let solo: Vec<WindowLogits> = vids
            .iter()
            .map(|v| {
                let mut s = ex.open_stream();
                s.push_frames(v).unwrap();
                s.logits().unwrap()
            })
            .collect();
        // One mux round encodes all staged groups in a single forward.
        let mut states: Vec<StreamState> = vids
            .iter()
            .map(|v| {
                let mut st = StreamState::new(*ex.model().config());
                st.stage_frames(v).unwrap();
                st
            })
            .collect();
        let mut refs: Vec<&mut StreamState> = states.iter_mut().collect();
        let report = encode_staged(ex.model(), &mut refs);
        assert_eq!(report, MuxEncodeReport { streams: 3, groups: 6 });
        for (st, want) in states.iter_mut().zip(&solo) {
            let got = st.logits(ex.model()).unwrap();
            assert_eq!(&got, want, "batched encode must be bit-identical");
        }
    }
}
