//! Clip encoders: factorized (ViViT model 2) and joint space-time
//! attention, with CLS or mean-pool readout.

use rand::Rng;
use tsdx_nn::{Binding, ParamId, ParamStore, TransformerEncoder};
use tsdx_tensor::{Graph, Tensor, Var};

use crate::config::{AttentionKind, ModelConfig, Readout};

/// Encodes token grids `[B, nt*ns, D]` into clip embeddings `[B, D]`.
#[derive(Debug, Clone)]
pub struct ClipEncoder {
    kind: AttentionKind,
    readout: Readout,
    spatial: TransformerEncoder,
    temporal: Option<TransformerEncoder>,
    cls_space: Option<ParamId>,
    cls_time: Option<ParamId>,
    n_time: usize,
    n_space: usize,
    dim: usize,
}

impl ClipEncoder {
    /// Registers encoder parameters according to `cfg`.
    ///
    /// For [`AttentionKind::Joint`] a single encoder of depth
    /// `spatial_depth + temporal_depth` is created so the parameter budget
    /// matches the factorized variant.
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, cfg: &ModelConfig) -> Self {
        let use_cls = cfg.readout == Readout::Cls;
        match cfg.attention {
            AttentionKind::Factorized => {
                let spatial = TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.spatial"),
                    cfg.dim,
                    cfg.spatial_depth,
                    cfg.heads,
                    cfg.mlp_ratio,
                    cfg.dropout,
                );
                let temporal = TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.temporal"),
                    cfg.dim,
                    cfg.temporal_depth,
                    cfg.heads,
                    cfg.mlp_ratio,
                    cfg.dropout,
                );
                let cls_space = use_cls.then(|| {
                    store.add(
                        format!("{name}.cls_space"),
                        tsdx_nn::init::embedding_normal(&[1, cfg.dim], rng),
                    )
                });
                let cls_time = use_cls.then(|| {
                    store.add(
                        format!("{name}.cls_time"),
                        tsdx_nn::init::embedding_normal(&[1, cfg.dim], rng),
                    )
                });
                ClipEncoder {
                    kind: cfg.attention,
                    readout: cfg.readout,
                    spatial,
                    temporal: Some(temporal),
                    cls_space,
                    cls_time,
                    n_time: cfg.n_time(),
                    n_space: cfg.n_space(),
                    dim: cfg.dim,
                }
            }
            AttentionKind::Joint => {
                let spatial = TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.joint"),
                    cfg.dim,
                    cfg.spatial_depth + cfg.temporal_depth,
                    cfg.heads,
                    cfg.mlp_ratio,
                    cfg.dropout,
                );
                let cls_space = use_cls.then(|| {
                    store.add(
                        format!("{name}.cls_joint"),
                        tsdx_nn::init::embedding_normal(&[1, cfg.dim], rng),
                    )
                });
                ClipEncoder {
                    kind: cfg.attention,
                    readout: cfg.readout,
                    spatial,
                    temporal: None,
                    cls_space,
                    cls_time: None,
                    n_time: cfg.n_time(),
                    n_space: cfg.n_space(),
                    dim: cfg.dim,
                }
            }
        }
    }

    /// Encodes `[B, nt*ns, D]` tokens to a `[B, D]` clip embedding.
    pub fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        tokens: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        let b = g.shape(tokens)[0];
        match self.kind {
            AttentionKind::Joint => {
                let seq = self.with_cls(g, p, tokens, self.cls_space);
                let encoded = self.spatial.forward(g, p, seq, rng, train);
                self.read(g, encoded)
            }
            AttentionKind::Factorized => {
                // Spatial stage over each time group independently.
                let per_frame = g.reshape(tokens, &[b * self.n_time, self.n_space, self.dim]);
                let seq = self.with_cls(g, p, per_frame, self.cls_space);
                let encoded = self.spatial.forward(g, p, seq, rng, train);
                let frame_embed = self.read(g, encoded); // [B*nt, D]
                let temporal_tokens = g.reshape(frame_embed, &[b, self.n_time, self.dim]);
                // Temporal stage over frame summaries.
                let seq_t = self.with_cls(g, p, temporal_tokens, self.cls_time);
                let temporal =
                    self.temporal.as_ref().expect("factorized encoder has a temporal stage");
                let encoded_t = temporal.forward(g, p, seq_t, rng, train);
                self.read(g, encoded_t)
            }
        }
    }

    /// Runs the (first) spatial or joint stage and returns the attention
    /// probabilities of its last block (`[N, H, T, T]`), for introspection.
    pub fn forward_attention(
        &self,
        g: &mut Graph,
        p: &Binding,
        tokens: Var,
        rng: &mut impl Rng,
    ) -> Var {
        let b = g.shape(tokens)[0];
        match self.kind {
            AttentionKind::Joint => {
                let seq = self.with_cls(g, p, tokens, self.cls_space);
                let (_, attn) = self.spatial.forward_with_attn(g, p, seq, rng, false);
                attn
            }
            AttentionKind::Factorized => {
                let per_frame = g.reshape(tokens, &[b * self.n_time, self.n_space, self.dim]);
                let seq = self.with_cls(g, p, per_frame, self.cls_space);
                let (_, attn) = self.spatial.forward_with_attn(g, p, seq, rng, false);
                attn
            }
        }
    }

    /// Runs the full factorized pipeline and returns the *temporal* stage's
    /// last-block attention (`[B, H, T', T']` where `T'` counts frame
    /// summaries plus an optional CLS).
    ///
    /// Returns `None` for joint encoders (they have no separate temporal
    /// stage; use [`ClipEncoder::forward_attention`] instead).
    pub fn forward_temporal_attention(
        &self,
        g: &mut Graph,
        p: &Binding,
        tokens: Var,
        rng: &mut impl Rng,
    ) -> Option<Var> {
        let temporal = self.temporal.as_ref()?;
        let b = g.shape(tokens)[0];
        let per_frame = g.reshape(tokens, &[b * self.n_time, self.n_space, self.dim]);
        let seq = self.with_cls(g, p, per_frame, self.cls_space);
        let encoded = self.spatial.forward(g, p, seq, rng, false);
        let frame_embed = self.read(g, encoded);
        let temporal_tokens = g.reshape(frame_embed, &[b, self.n_time, self.dim]);
        let seq_t = self.with_cls(g, p, temporal_tokens, self.cls_time);
        let (_, attn) = temporal.forward_with_attn(g, p, seq_t, rng, false);
        Some(attn)
    }

    /// Prepends a learned CLS token (broadcast over the batch) when the
    /// readout is CLS; otherwise returns the sequence unchanged.
    fn with_cls(&self, g: &mut Graph, p: &Binding, seq: Var, cls: Option<ParamId>) -> Var {
        let Some(cls) = cls else { return seq };
        let b = g.shape(seq)[0];
        // Broadcast [1, D] to [B, 1, D] via ones-matmul (keeps gradients
        // flowing to the CLS parameter).
        let ones = g.constant(Tensor::ones(&[b, 1, 1]));
        let cls_var = p.var(cls);
        let tiled = g.matmul(ones, cls_var); // [B, 1, D]
        g.concat(&[tiled, seq], 1)
    }

    /// Reads a `[N, T, D]` encoded sequence down to `[N, D]`.
    fn read(&self, g: &mut Graph, encoded: Var) -> Var {
        let sh = g.shape(encoded).to_vec();
        match self.readout {
            Readout::Cls => {
                let first = g.narrow(encoded, 1, 0, 1);
                g.reshape(first, &[sh[0], sh[2]])
            }
            Readout::MeanPool => g.mean_axis(encoded, 1, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(kind: AttentionKind, readout: Readout) -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 8,
            width: 8,
            tubelet_t: 2,
            patch: 4,
            dim: 8,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            attention: kind,
            readout,
        }
    }

    fn run(kind: AttentionKind, readout: Readout) -> (usize, Vec<f32>) {
        let cfg = cfg(kind, readout);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = ClipEncoder::new(&mut store, &mut rng, "enc", &cfg);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let tokens = g.constant(Tensor::from_fn(&[2, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.1));
        let out = enc.forward(&mut g, &p, tokens, &mut rng, false);
        assert_eq!(g.shape(out), &[2, 8]);
        (store.num_scalars(), g.value(out).data().to_vec())
    }

    #[test]
    fn all_variants_produce_clip_embeddings() {
        for kind in [AttentionKind::Factorized, AttentionKind::Joint] {
            for readout in [Readout::Cls, Readout::MeanPool] {
                let (_, out) = run(kind, readout);
                assert!(out.iter().all(|v| v.is_finite()), "{kind:?}/{readout:?}");
            }
        }
    }

    #[test]
    fn joint_and_factorized_have_comparable_param_budgets() {
        let (pf, _) = run(AttentionKind::Factorized, Readout::Cls);
        let (pj, _) = run(AttentionKind::Joint, Readout::Cls);
        let ratio = pf as f32 / pj as f32;
        assert!((0.8..1.25).contains(&ratio), "param budgets diverge: {pf} vs {pj}");
    }

    #[test]
    fn gradients_reach_cls_tokens() {
        let cfg = cfg(AttentionKind::Factorized, Readout::Cls);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = ClipEncoder::new(&mut store, &mut rng, "enc", &cfg);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let tokens = g.constant(Tensor::from_fn(&[1, 8, 8], |i| (i as f32 * 0.01).sin()));
        let out = enc.forward(&mut g, &p, tokens, &mut rng, false);
        // Square the embedding before reducing: the gradient of a plain mean
        // is row-uniform, which the final layer norm's Jacobian annihilates
        // exactly (any nonzero grad below it would be roundoff noise).
        let sq = g.mul(out, out);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        // Find the CLS params by name and confirm nonzero gradients.
        for (i, id) in store.ids().enumerate() {
            let name = store.name(id);
            if name.contains("cls") {
                assert!(
                    collected[i].data().iter().any(|&v| v != 0.0),
                    "no gradient reached {name}"
                );
            }
        }
    }

    #[test]
    fn mean_pool_is_permutation_invariant_with_identity_encoder() {
        // Sanity: with mean-pool readout, reordering *identical* tokens
        // doesn't change the embedding (tokens are identical here).
        let (_, a) = run(AttentionKind::Joint, Readout::MeanPool);
        let (_, b) = run(AttentionKind::Joint, Readout::MeanPool);
        assert_eq!(a, b);
    }
}
