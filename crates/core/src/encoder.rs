//! Clip encoders: factorized (ViViT model 2) and joint space-time
//! attention, with CLS or mean-pool readout.
//!
//! The factorized pipeline is split into two explicit, individually
//! callable stages with a cacheable boundary between them:
//!
//! 1. [`ClipEncoder::spatial_summaries`] — per-group token rows
//!    `[N, ns, D]` to frame summaries `[N, D]`. Row-independent and free of
//!    temporal position, so a summary computed for one streamed group is
//!    bit-identical to the same group inside a full batched window.
//! 2. [`ClipEncoder::temporal_readout`] — frame summaries `[B, nt, D]` to
//!    clip embeddings `[B, D]`. The *window-relative* temporal position is
//!    applied here, followed by the temporal transformer.
//!
//! [`ClipEncoder::forward`] composes the two; a
//! [`StreamSession`](crate::StreamSession) calls them separately and caches
//! stage-1 outputs by absolute group index.

use rand::Rng;
use tsdx_nn::{Binding, EncoderKvCache, ParamId, ParamStore, TransformerEncoder};
use tsdx_tensor::{Graph, Tensor, Var};

use crate::config::{AttentionKind, ModelConfig, Readout};

/// Encodes token grids `[B, nt*ns, D]` into clip embeddings `[B, D]`.
#[derive(Debug, Clone)]
pub struct ClipEncoder {
    kind: AttentionKind,
    readout: Readout,
    spatial: TransformerEncoder,
    temporal: Option<TransformerEncoder>,
    cls_space: Option<ParamId>,
    cls_time: Option<ParamId>,
    /// Temporal positional embedding `[nt, 1, D]`, applied at the temporal
    /// stage boundary (factorized) or to the token grid (joint). Lives here
    /// rather than in the tubelet embedding so that spatial-stage outputs
    /// stay window-position-free and therefore cacheable.
    pos_time: ParamId,
    n_time: usize,
    n_space: usize,
    dim: usize,
}

impl ClipEncoder {
    /// Registers encoder parameters according to `cfg`.
    ///
    /// For [`AttentionKind::Joint`] a single encoder of depth
    /// `spatial_depth + temporal_depth` is created so the parameter budget
    /// matches the factorized variant.
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, cfg: &ModelConfig) -> Self {
        let use_cls = cfg.readout == Readout::Cls;
        match cfg.attention {
            AttentionKind::Factorized => {
                let spatial = TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.spatial"),
                    cfg.dim,
                    cfg.spatial_depth,
                    cfg.heads,
                    cfg.mlp_ratio,
                    cfg.dropout,
                );
                let temporal = TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.temporal"),
                    cfg.dim,
                    cfg.temporal_depth,
                    cfg.heads,
                    cfg.mlp_ratio,
                    cfg.dropout,
                );
                let cls_space = use_cls.then(|| {
                    store.add(
                        format!("{name}.cls_space"),
                        tsdx_nn::init::embedding_normal(&[1, cfg.dim], rng),
                    )
                });
                let cls_time = use_cls.then(|| {
                    store.add(
                        format!("{name}.cls_time"),
                        tsdx_nn::init::embedding_normal(&[1, cfg.dim], rng),
                    )
                });
                let pos_time = store.add(
                    format!("{name}.pos_time"),
                    tsdx_nn::init::embedding_normal(&[cfg.n_time(), 1, cfg.dim], rng),
                );
                ClipEncoder {
                    kind: cfg.attention,
                    readout: cfg.readout,
                    spatial,
                    temporal: Some(temporal),
                    cls_space,
                    cls_time,
                    pos_time,
                    n_time: cfg.n_time(),
                    n_space: cfg.n_space(),
                    dim: cfg.dim,
                }
            }
            AttentionKind::Joint => {
                let spatial = TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.joint"),
                    cfg.dim,
                    cfg.spatial_depth + cfg.temporal_depth,
                    cfg.heads,
                    cfg.mlp_ratio,
                    cfg.dropout,
                );
                let cls_space = use_cls.then(|| {
                    store.add(
                        format!("{name}.cls_joint"),
                        tsdx_nn::init::embedding_normal(&[1, cfg.dim], rng),
                    )
                });
                let pos_time = store.add(
                    format!("{name}.pos_time"),
                    tsdx_nn::init::embedding_normal(&[cfg.n_time(), 1, cfg.dim], rng),
                );
                ClipEncoder {
                    kind: cfg.attention,
                    readout: cfg.readout,
                    spatial,
                    temporal: None,
                    cls_space,
                    cls_time: None,
                    pos_time,
                    n_time: cfg.n_time(),
                    n_space: cfg.n_space(),
                    dim: cfg.dim,
                }
            }
        }
    }

    /// Encodes `[B, nt*ns, D]` tokens (projected, spatially positioned,
    /// *not* temporally positioned) to a `[B, D]` clip embedding.
    pub fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        tokens: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        let b = g.shape(tokens)[0];
        match self.kind {
            AttentionKind::Joint => {
                // Joint attention has no cacheable stage boundary: the
                // temporal position goes straight onto the token grid.
                let timed = self.with_time_positions_grid(g, p, tokens);
                let seq = self.with_cls(g, p, timed, self.cls_space);
                let encoded = self.spatial.forward(g, p, seq, rng, train);
                self.read(g, encoded)
            }
            AttentionKind::Factorized => {
                // Spatial stage over each time group independently.
                let per_frame = g.reshape(tokens, &[b * self.n_time, self.n_space, self.dim]);
                let frame_embed = self.spatial_summaries(g, p, per_frame, rng, train); // [B*nt, D]
                let temporal_tokens = g.reshape(frame_embed, &[b, self.n_time, self.dim]);
                self.temporal_readout(g, p, temporal_tokens, rng, train)
            }
        }
    }

    /// Spatial stage of the factorized pipeline: per-group token rows
    /// `[N, ns, D]` (one row of `ns` spatial tokens per time group) to
    /// frame summaries `[N, D]`.
    ///
    /// Every operation here is row-independent and free of temporal
    /// position, so a summary computed for one group at a time is
    /// bit-identical to the same group inside a batched window — the
    /// invariant [`StreamSession`](crate::StreamSession) caches against.
    ///
    /// # Panics
    ///
    /// Panics for joint encoders, which have no separate spatial stage.
    pub fn spatial_summaries(
        &self,
        g: &mut Graph,
        p: &Binding,
        groups: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        assert_eq!(
            self.kind,
            AttentionKind::Factorized,
            "spatial_summaries is a factorized-pipeline stage"
        );
        let seq = self.with_cls(g, p, groups, self.cls_space);
        let encoded = self.spatial.forward(g, p, seq, rng, train);
        self.read(g, encoded)
    }

    /// Temporal stage of the factorized pipeline: raw frame summaries
    /// `[B, nt, D]` to clip embeddings `[B, D]`. Applies the
    /// window-relative temporal position, prepends the temporal CLS, and
    /// runs the temporal transformer.
    ///
    /// # Panics
    ///
    /// Panics for joint encoders.
    pub fn temporal_readout(
        &self,
        g: &mut Graph,
        p: &Binding,
        frames: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        let temporal = self.temporal.as_ref().expect("factorized encoder has a temporal stage");
        let timed = self.with_time_positions(g, p, frames);
        let seq_t = self.with_cls(g, p, timed, self.cls_time);
        let encoded_t = temporal.forward(g, p, seq_t, rng, train);
        self.read(g, encoded_t)
    }

    /// Prefix-aware [`temporal_readout`](Self::temporal_readout) for
    /// streaming inference; bit-identical to it at `train == false`.
    ///
    /// Under sliding windows only the CLS row of the temporal sequence is
    /// prefix-stable — content rows carry window-*relative* positions, so a
    /// group that slid from slot `i` to slot `i-1` is a different token
    /// even though its summary was cached. When a CLS readout and a cache
    /// are present, its key/value rows are served from the cache
    /// ([`TransformerEncoder::forward_prefix`]); the returned cache feeds
    /// the next window.
    pub fn temporal_readout_streaming(
        &self,
        g: &mut Graph,
        p: &Binding,
        frames: Var,
        cache: Option<&EncoderKvCache>,
    ) -> (Var, EncoderKvCache) {
        let temporal = self.temporal.as_ref().expect("factorized encoder has a temporal stage");
        let timed = self.with_time_positions(g, p, frames);
        let seq_t = self.with_cls(g, p, timed, self.cls_time);
        let prefix = usize::from(self.cls_time.is_some() && cache.is_some_and(|c| !c.is_empty()));
        let (encoded_t, next) = temporal.forward_prefix(g, p, seq_t, cache, prefix);
        (self.read(g, encoded_t), next)
    }

    /// Adds the temporal position table to frame summaries `[B, nt, D]`.
    fn with_time_positions(&self, g: &mut Graph, p: &Binding, frames: Var) -> Var {
        let pt = p.var(self.pos_time);
        let flat = g.reshape(pt, &[self.n_time, self.dim]);
        g.add(frames, flat)
    }

    /// Adds the temporal position to a joint token grid `[B, nt*ns, D]`
    /// (broadcast over the `ns` spatial tokens of each group).
    fn with_time_positions_grid(&self, g: &mut Graph, p: &Binding, tokens: Var) -> Var {
        let b = g.shape(tokens)[0];
        let grid = g.reshape(tokens, &[b, self.n_time, self.n_space, self.dim]);
        let pt = p.var(self.pos_time);
        let timed = g.add(grid, pt);
        g.reshape(timed, &[b, self.n_time * self.n_space, self.dim])
    }

    /// Runs the (first) spatial or joint stage and returns the attention
    /// probabilities of its last block (`[N, H, T, T]`), for introspection.
    pub fn forward_attention(
        &self,
        g: &mut Graph,
        p: &Binding,
        tokens: Var,
        rng: &mut impl Rng,
    ) -> Var {
        let b = g.shape(tokens)[0];
        match self.kind {
            AttentionKind::Joint => {
                let timed = self.with_time_positions_grid(g, p, tokens);
                let seq = self.with_cls(g, p, timed, self.cls_space);
                let (_, attn) = self.spatial.forward_with_attn(g, p, seq, rng, false);
                attn
            }
            AttentionKind::Factorized => {
                let per_frame = g.reshape(tokens, &[b * self.n_time, self.n_space, self.dim]);
                let seq = self.with_cls(g, p, per_frame, self.cls_space);
                let (_, attn) = self.spatial.forward_with_attn(g, p, seq, rng, false);
                attn
            }
        }
    }

    /// Runs the full factorized pipeline and returns the *temporal* stage's
    /// last-block attention (`[B, H, T', T']` where `T'` counts frame
    /// summaries plus an optional CLS).
    ///
    /// Returns `None` for joint encoders (they have no separate temporal
    /// stage; use [`ClipEncoder::forward_attention`] instead).
    pub fn forward_temporal_attention(
        &self,
        g: &mut Graph,
        p: &Binding,
        tokens: Var,
        rng: &mut impl Rng,
    ) -> Option<Var> {
        let temporal = self.temporal.as_ref()?;
        let b = g.shape(tokens)[0];
        let per_frame = g.reshape(tokens, &[b * self.n_time, self.n_space, self.dim]);
        let frame_embed = self.spatial_summaries(g, p, per_frame, rng, false);
        let temporal_tokens = g.reshape(frame_embed, &[b, self.n_time, self.dim]);
        let timed = self.with_time_positions(g, p, temporal_tokens);
        let seq_t = self.with_cls(g, p, timed, self.cls_time);
        let (_, attn) = temporal.forward_with_attn(g, p, seq_t, rng, false);
        Some(attn)
    }

    /// Prepends a learned CLS token (broadcast over the batch) when the
    /// readout is CLS; otherwise returns the sequence unchanged.
    fn with_cls(&self, g: &mut Graph, p: &Binding, seq: Var, cls: Option<ParamId>) -> Var {
        let Some(cls) = cls else { return seq };
        let b = g.shape(seq)[0];
        // Broadcast [1, D] to [B, 1, D] via ones-matmul (keeps gradients
        // flowing to the CLS parameter).
        let ones = g.constant(Tensor::ones(&[b, 1, 1]));
        let cls_var = p.var(cls);
        let tiled = g.matmul(ones, cls_var); // [B, 1, D]
        g.concat(&[tiled, seq], 1)
    }

    /// Reads a `[N, T, D]` encoded sequence down to `[N, D]`.
    fn read(&self, g: &mut Graph, encoded: Var) -> Var {
        let sh = g.shape(encoded).to_vec();
        match self.readout {
            Readout::Cls => {
                let first = g.narrow(encoded, 1, 0, 1);
                g.reshape(first, &[sh[0], sh[2]])
            }
            Readout::MeanPool => g.mean_axis(encoded, 1, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(kind: AttentionKind, readout: Readout) -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 8,
            width: 8,
            tubelet_t: 2,
            patch: 4,
            dim: 8,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            attention: kind,
            readout,
        }
    }

    fn run(kind: AttentionKind, readout: Readout) -> (usize, Vec<f32>) {
        let cfg = cfg(kind, readout);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = ClipEncoder::new(&mut store, &mut rng, "enc", &cfg);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let tokens = g.constant(Tensor::from_fn(&[2, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.1));
        let out = enc.forward(&mut g, &p, tokens, &mut rng, false);
        assert_eq!(g.shape(out), &[2, 8]);
        (store.num_scalars(), g.value(out).data().to_vec())
    }

    #[test]
    fn all_variants_produce_clip_embeddings() {
        for kind in [AttentionKind::Factorized, AttentionKind::Joint] {
            for readout in [Readout::Cls, Readout::MeanPool] {
                let (_, out) = run(kind, readout);
                assert!(out.iter().all(|v| v.is_finite()), "{kind:?}/{readout:?}");
            }
        }
    }

    #[test]
    fn joint_and_factorized_have_comparable_param_budgets() {
        let (pf, _) = run(AttentionKind::Factorized, Readout::Cls);
        let (pj, _) = run(AttentionKind::Joint, Readout::Cls);
        let ratio = pf as f32 / pj as f32;
        assert!((0.8..1.25).contains(&ratio), "param budgets diverge: {pf} vs {pj}");
    }

    #[test]
    fn gradients_reach_cls_tokens() {
        let cfg = cfg(AttentionKind::Factorized, Readout::Cls);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = ClipEncoder::new(&mut store, &mut rng, "enc", &cfg);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let tokens = g.constant(Tensor::from_fn(&[1, 8, 8], |i| (i as f32 * 0.01).sin()));
        let out = enc.forward(&mut g, &p, tokens, &mut rng, false);
        // Square the embedding before reducing: the gradient of a plain mean
        // is row-uniform, which the final layer norm's Jacobian annihilates
        // exactly (any nonzero grad below it would be roundoff noise).
        let sq = g.mul(out, out);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        // Find the CLS params by name and confirm nonzero gradients.
        for (i, id) in store.ids().enumerate() {
            let name = store.name(id);
            if name.contains("cls") {
                assert!(
                    collected[i].data().iter().any(|&v| v != 0.0),
                    "no gradient reached {name}"
                );
            }
        }
    }

    #[test]
    fn staged_calls_compose_to_forward_bitwise() {
        // spatial_summaries + temporal_readout must rebuild exactly the
        // graph `forward` builds — the streaming session depends on it.
        for readout in [Readout::Cls, Readout::MeanPool] {
            let cfg = cfg(AttentionKind::Factorized, readout);
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(3);
            let enc = ClipEncoder::new(&mut store, &mut rng, "enc", &cfg);
            let mut g = Graph::new();
            let p = store.bind_frozen(&mut g);
            let x0 = Tensor::from_fn(&[2, 8, 8], |i| (i as f32 * 0.05).sin());
            let tokens = g.constant(x0);
            let full = enc.forward(&mut g, &p, tokens, &mut rng, false);

            let per_frame = g.reshape(tokens, &[4, 4, 8]);
            let sums = enc.spatial_summaries(&mut g, &p, per_frame, &mut rng, false);
            let frames = g.reshape(sums, &[2, 2, 8]);
            let staged = enc.temporal_readout(&mut g, &p, frames, &mut rng, false);
            assert_eq!(g.value(full).data(), g.value(staged).data(), "{readout:?}");

            // The streaming temporal stage agrees too, with and without a
            // warm key/value cache.
            let (cold, kv) = enc.temporal_readout_streaming(&mut g, &p, frames, None);
            assert_eq!(g.value(full).data(), g.value(cold).data());
            let (warm, _) = enc.temporal_readout_streaming(&mut g, &p, frames, Some(&kv));
            assert_eq!(g.value(full).data(), g.value(warm).data());
        }
    }

    #[test]
    fn temporal_positions_differentiate_time_groups() {
        // With identical per-group inputs, the clip embedding must still
        // depend on order: the temporal position is applied at the
        // temporal-stage boundary.
        let cfg = cfg(AttentionKind::Factorized, Readout::Cls);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = ClipEncoder::new(&mut store, &mut rng, "enc", &cfg);
        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let a = Tensor::from_fn(&[1, 2, 8], |i| if i < 8 { 1.0 } else { -1.0 });
        let mut rev = a.to_vec();
        rev.rotate_left(8);
        let fa = g.constant(a);
        let fb = g.constant(Tensor::from_vec(rev, &[1, 2, 8]));
        let ya = enc.temporal_readout(&mut g, &p, fa, &mut rng, false);
        let yb = enc.temporal_readout(&mut g, &p, fb, &mut rng, false);
        assert_ne!(g.value(ya).data(), g.value(yb).data(), "time order must matter");
    }

    #[test]
    fn mean_pool_is_permutation_invariant_with_identity_encoder() {
        // Sanity: with mean-pool readout, reordering *identical* tokens
        // doesn't change the embedding (tokens are identical here).
        let (_, a) = run(AttentionKind::Joint, Readout::MeanPool);
        let (_, b) = run(AttentionKind::Joint, Readout::MeanPool);
        assert_eq!(a, b);
    }
}
