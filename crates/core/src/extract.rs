//! End-to-end scenario extraction API.

use tsdx_data::Clip;
use tsdx_sdl::Scenario;
use tsdx_tensor::Tensor;

use crate::model::VideoScenarioTransformer;
use crate::train::{predict_labels, TrainConfig};

/// High-level extractor: video in, SDL description out.
///
/// Wraps a trained [`VideoScenarioTransformer`] together with the greedy
/// decoding from head outputs to a validated [`Scenario`].
///
/// # Examples
///
/// ```no_run
/// use tsdx_core::{ModelConfig, ScenarioExtractor};
/// use tsdx_tensor::Tensor;
///
/// let extractor = ScenarioExtractor::untrained(ModelConfig::default(), 0);
/// let clip = Tensor::zeros(&[8, 32, 32]);
/// let description = extractor.extract(&clip);
/// println!("{description}");
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioExtractor {
    model: VideoScenarioTransformer,
}

impl ScenarioExtractor {
    /// Wraps an already-trained model.
    pub fn new(model: VideoScenarioTransformer) -> Self {
        ScenarioExtractor { model }
    }

    /// Creates an extractor with random weights (for demos and tests; train
    /// it with [`ScenarioExtractor::fit`]).
    pub fn untrained(cfg: crate::ModelConfig, seed: u64) -> Self {
        ScenarioExtractor { model: VideoScenarioTransformer::new(cfg, seed) }
    }

    /// Trains the underlying model on `clips` (all indices) and returns the
    /// final mean training loss.
    pub fn fit(&mut self, clips: &[Clip], cfg: &TrainConfig) -> f32 {
        let idx: Vec<usize> = (0..clips.len()).collect();
        let report = crate::train::train(&mut self.model, clips, &idx, cfg);
        report.final_loss()
    }

    /// Extracts the SDL description of a single video `[T, H, W]`.
    ///
    /// The returned scenario always satisfies [`Scenario::validate`].
    pub fn extract(&self, video: &Tensor) -> Scenario {
        let sh = video.shape();
        assert_eq!(sh.len(), 3, "expected a single [T, H, W] video");
        let batched = video.reshape(&[1, sh[0], sh[1], sh[2]]);
        let labels = self.model.predict(&batched);
        labels[0].to_scenario()
    }

    /// Extracts descriptions for a batch of clips.
    pub fn extract_batch(&self, clips: &[Clip]) -> Vec<Scenario> {
        let idx: Vec<usize> = (0..clips.len()).collect();
        predict_labels(&self.model, clips, &idx).into_iter().map(|l| l.to_scenario()).collect()
    }

    /// The wrapped model.
    pub fn model(&self) -> &VideoScenarioTransformer {
        &self.model
    }

    /// Mutable access to the wrapped model (e.g. for checkpoint loading).
    pub fn model_mut(&mut self) -> &mut VideoScenarioTransformer {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn tiny_extractor() -> ScenarioExtractor {
        ScenarioExtractor::untrained(
            ModelConfig {
                frames: 4,
                height: 16,
                width: 16,
                tubelet_t: 2,
                patch: 8,
                dim: 16,
                spatial_depth: 1,
                temporal_depth: 1,
                heads: 2,
                dropout: 0.0,
                ..ModelConfig::default()
            },
            0,
        )
    }

    #[test]
    fn extract_returns_valid_parseable_sdl() {
        let ex = tiny_extractor();
        let video = Tensor::from_fn(&[4, 16, 16], |i| (i % 11) as f32 / 11.0);
        let scenario = ex.extract(&video);
        scenario.validate().unwrap();
        // Round-trips through the canonical text form.
        let text = scenario.to_string();
        let parsed: Scenario = text.parse().unwrap();
        assert_eq!(parsed, scenario);
    }

    #[test]
    #[should_panic]
    fn extract_rejects_batched_input() {
        let ex = tiny_extractor();
        ex.extract(&Tensor::zeros(&[2, 4, 16, 16]));
    }
}
