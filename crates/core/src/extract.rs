//! End-to-end scenario extraction API.

use std::error::Error;
use std::fmt;

use tsdx_data::Clip;
use tsdx_sdl::Scenario;
use tsdx_tensor::Tensor;

use crate::model::VideoScenarioTransformer;
use crate::session::StreamSession;
use crate::train::{predict_labels, TrainConfig};

/// A malformed extraction input, reported by
/// [`ScenarioExtractor::extract_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExtractError {
    /// The video tensor is not rank 3 (`[T, H, W]`).
    BadRank {
        /// Rank of the offending input.
        found: usize,
    },
    /// The video's dimensions disagree with the model configuration.
    BadShape {
        /// `[frames, height, width]` the model was built for.
        expected: [usize; 3],
        /// Shape of the offending input.
        found: Vec<usize>,
    },
    /// A pixel is NaN or infinite.
    NonFinite {
        /// Flat index of the first offending pixel (within the offending
        /// tensor — the whole video for one-shot extraction, the pushed
        /// chunk for streams).
        index: usize,
    },
    /// The video has no frames at all (`T == 0`).
    Empty,
    /// Fewer frames than the model's window requires — e.g. a clip shorter
    /// than the tubelet temporal extent, or a stream asked to describe
    /// before a full window has arrived.
    TooShort {
        /// Frames available.
        frames: usize,
        /// Frames one window requires.
        min: usize,
    },
    /// A streamed frame chunk's spatial dimensions disagree with the model
    /// (the frame count of a chunk is free; height and width are not).
    BadFrameShape {
        /// `[height, width]` the model was built for.
        expected: [usize; 2],
        /// `[height, width]` of the offending chunk.
        found: [usize; 2],
    },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::BadRank { found } => {
                write!(f, "expected a single [T, H, W] video (rank 3), got rank {found}")
            }
            ExtractError::BadShape { expected, found } => {
                write!(f, "video shape {found:?} does not match the model's expected {expected:?}")
            }
            ExtractError::NonFinite { index } => {
                write!(f, "video contains a non-finite pixel at flat index {index}")
            }
            ExtractError::Empty => write!(f, "video has no frames"),
            ExtractError::TooShort { frames, min } => {
                write!(f, "only {frames} frame(s) available, a window needs {min}")
            }
            ExtractError::BadFrameShape { expected, found } => {
                write!(
                    f,
                    "frame dimensions {found:?} do not match the model's expected {expected:?}"
                )
            }
        }
    }
}

impl Error for ExtractError {}

/// High-level extractor: video in, SDL description out.
///
/// Wraps a trained [`VideoScenarioTransformer`] together with the greedy
/// decoding from head outputs to a validated [`Scenario`].
///
/// # Examples
///
/// ```no_run
/// use tsdx_core::{ModelConfig, ScenarioExtractor};
/// use tsdx_tensor::Tensor;
///
/// let extractor = ScenarioExtractor::untrained(ModelConfig::default(), 0);
/// let clip = Tensor::zeros(&[8, 32, 32]);
/// let description = extractor.extract_checked(&clip).expect("well-formed clip");
/// println!("{description}");
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioExtractor {
    model: VideoScenarioTransformer,
}

/// What [`ScenarioExtractor::quantize`] converted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantReport {
    /// Number of weight matrices now held as packed int8 panels.
    pub matrices: usize,
    /// Total bytes of packed panels + per-channel scales.
    pub packed_bytes: usize,
}

impl fmt::Display for QuantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} matrices quantized ({} KiB packed)", self.matrices, self.packed_bytes / 1024)
    }
}

impl ScenarioExtractor {
    /// Wraps an already-trained model.
    pub fn new(model: VideoScenarioTransformer) -> Self {
        ScenarioExtractor { model }
    }

    /// Creates an extractor with random weights (for demos and tests; train
    /// it with [`ScenarioExtractor::fit`]).
    pub fn untrained(cfg: crate::ModelConfig, seed: u64) -> Self {
        ScenarioExtractor { model: VideoScenarioTransformer::new(cfg, seed) }
    }

    /// Trains the underlying model on `clips` (all indices) and returns the
    /// final mean training loss.
    pub fn fit(&mut self, clips: &[Clip], cfg: &TrainConfig) -> f32 {
        let idx: Vec<usize> = (0..clips.len()).collect();
        let report = crate::train::train(&mut self.model, clips, &idx, cfg);
        report.final_loss()
    }

    /// Quantizes the model's encoder and head weight matrices into
    /// prepacked per-channel int8 panels, returning what was converted.
    ///
    /// Quantization is *lazy*: the first int8-bound forward would build
    /// the same packed weights on demand. Calling `quantize()` explicitly
    /// front-loads that one-time cost so steady-state `extract_checked` /
    /// `push_frames` under `TSDX_PRECISION=int8` performs no quantization
    /// or packing work at all (the allocation-regression suite pins
    /// this). Idempotent; the packed panels are dropped and rebuilt
    /// automatically if the parameters change (training, checkpoint
    /// load).
    ///
    /// The int8 plane is only *used* when the active
    /// [`crate::precision::Precision`] is `Int8` — under the default
    /// `f32` dial the model's behavior is unchanged, bit for bit.
    pub fn quantize(&self) -> QuantReport {
        let q = self.model.quantized_weights();
        QuantReport { matrices: q.len(), packed_bytes: q.packed_bytes() }
    }

    /// Extracts the SDL description of a single video `[T, H, W]` whose
    /// well-formedness the *caller* guarantees — only for inputs that are
    /// infallible by construction (e.g. clips straight out of the
    /// simulator). Everything else — files, network requests, user data —
    /// should go through [`ScenarioExtractor::extract_checked`], which
    /// reports malformed input as a typed [`ExtractError`] instead of
    /// panicking.
    ///
    /// The returned scenario always satisfies [`Scenario::validate`].
    ///
    /// # Panics
    ///
    /// Panics on malformed input (wrong rank/shape, non-finite pixels).
    pub fn extract(&self, video: &Tensor) -> Scenario {
        self.extract_checked(video).unwrap_or_else(|e| panic!("extract: {e}"))
    }

    /// Extracts the SDL description of a single video `[T, H, W]`,
    /// validating the input first.
    ///
    /// Implemented as a single-window [`StreamSession`]: one-shot and
    /// streaming extraction share exactly one forward path, so their
    /// outputs cannot drift apart.
    ///
    /// The returned scenario always satisfies [`Scenario::validate`].
    ///
    /// # Errors
    ///
    /// [`ExtractError::BadRank`] unless the input is rank 3,
    /// [`ExtractError::Empty`] when it has no frames,
    /// [`ExtractError::TooShort`] when it has fewer frames than one window,
    /// [`ExtractError::BadShape`] when its dimensions otherwise disagree
    /// with the model configuration, and [`ExtractError::NonFinite`] when
    /// any pixel is NaN or infinite — never a panic, so a malformed request
    /// cannot take down a serving process.
    pub fn extract_checked(&self, video: &Tensor) -> Result<Scenario, ExtractError> {
        self.validate_window(video)?;
        let mut session = self.open_stream();
        session.push_frames(video)?;
        session.describe()
    }

    /// Checks that `video` is exactly one well-formed `[T, H, W]` window for
    /// this model, without running any inference.
    ///
    /// This is the admission-time half of [`extract_checked`]
    /// (`ScenarioExtractor::extract_checked`), split out so a serving layer
    /// can reject malformed requests *before* they occupy a batch slot.
    /// Non-finite pixels are reported here too — a batched forward must
    /// never see NaN from a neighboring request.
    ///
    /// # Errors
    ///
    /// The same typed [`ExtractError`]s as [`extract_checked`]
    /// (`ScenarioExtractor::extract_checked`).
    pub fn validate_window(&self, video: &Tensor) -> Result<(), ExtractError> {
        let sh = video.shape();
        if sh.len() != 3 {
            return Err(ExtractError::BadRank { found: sh.len() });
        }
        let cfg = self.model.config();
        let expected = [cfg.frames, cfg.height, cfg.width];
        if sh[0] == 0 {
            return Err(ExtractError::Empty);
        }
        if sh[1] != cfg.height || sh[2] != cfg.width {
            return Err(ExtractError::BadShape { expected, found: sh.to_vec() });
        }
        if sh[0] < cfg.frames {
            return Err(ExtractError::TooShort { frames: sh[0], min: cfg.frames });
        }
        if sh[0] > cfg.frames {
            return Err(ExtractError::BadShape { expected, found: sh.to_vec() });
        }
        if let Some(index) = video.to_vec().iter().position(|v| !v.is_finite()) {
            return Err(ExtractError::NonFinite { index });
        }
        Ok(())
    }

    /// Extracts descriptions for many independent `[T, H, W]` windows in
    /// **one batched forward pass** — the entry point for a serving layer
    /// that coalesces concurrent requests.
    ///
    /// Each window is validated independently ([`validate_window`]
    /// (`ScenarioExtractor::validate_window`)); the well-formed ones are
    /// stacked into a single `[B, T, H, W]` batch and pushed through the
    /// encoder once, so the per-clip cost amortizes the packed-GEMM and
    /// fused-attention work across the batch. Malformed windows get their
    /// own typed error and never contaminate the batch. The output is
    /// positionally aligned with `videos`.
    ///
    /// The forward runs under the active [`crate::precision::Precision`],
    /// so a server can flip a whole batch to the int8 plane under load.
    pub fn extract_window_batch(&self, videos: &[&Tensor]) -> Vec<Result<Scenario, ExtractError>> {
        let mut out: Vec<Option<Result<Scenario, ExtractError>>> = Vec::with_capacity(videos.len());
        let mut valid: Vec<usize> = Vec::with_capacity(videos.len());
        for (i, v) in videos.iter().enumerate() {
            match self.validate_window(v) {
                Ok(()) => {
                    valid.push(i);
                    out.push(None);
                }
                Err(e) => out.push(Some(Err(e))),
            }
        }
        if !valid.is_empty() {
            let cfg = self.model.config();
            let per = cfg.frames * cfg.height * cfg.width;
            let mut stacked = Vec::with_capacity(valid.len() * per);
            for &i in &valid {
                stacked.extend_from_slice(&videos[i].to_vec());
            }
            let batch =
                Tensor::from_vec(stacked, &[valid.len(), cfg.frames, cfg.height, cfg.width]);
            let labels = self.model.predict(&batch);
            for (&i, l) in valid.iter().zip(&labels) {
                out[i] = Some(Ok(l.to_scenario()));
            }
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Opens a streaming session over this extractor's model: push frames
    /// as they arrive, describe the newest window incrementally. The
    /// session borrows the extractor, so the model cannot be mutated (and
    /// its caches silently invalidated) while a stream is live.
    pub fn open_stream(&self) -> StreamSession<'_> {
        StreamSession::new(&self.model)
    }

    /// Extracts descriptions for a batch of clips.
    pub fn extract_batch(&self, clips: &[Clip]) -> Vec<Scenario> {
        let idx: Vec<usize> = (0..clips.len()).collect();
        predict_labels(&self.model, clips, &idx).into_iter().map(|l| l.to_scenario()).collect()
    }

    /// The wrapped model.
    pub fn model(&self) -> &VideoScenarioTransformer {
        &self.model
    }

    /// Mutable access to the wrapped model (e.g. for checkpoint loading).
    pub fn model_mut(&mut self) -> &mut VideoScenarioTransformer {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn tiny_extractor() -> ScenarioExtractor {
        ScenarioExtractor::untrained(
            ModelConfig {
                frames: 4,
                height: 16,
                width: 16,
                tubelet_t: 2,
                patch: 8,
                dim: 16,
                spatial_depth: 1,
                temporal_depth: 1,
                heads: 2,
                dropout: 0.0,
                ..ModelConfig::default()
            },
            0,
        )
    }

    #[test]
    fn extract_returns_valid_parseable_sdl() {
        let ex = tiny_extractor();
        let video = Tensor::from_fn(&[4, 16, 16], |i| (i % 11) as f32 / 11.0);
        let scenario = ex.extract(&video);
        scenario.validate().unwrap();
        // Round-trips through the canonical text form.
        let text = scenario.to_string();
        let parsed: Scenario = text.parse().unwrap();
        assert_eq!(parsed, scenario);
    }

    #[test]
    #[should_panic]
    fn extract_rejects_batched_input() {
        let ex = tiny_extractor();
        ex.extract(&Tensor::zeros(&[2, 4, 16, 16]));
    }

    #[test]
    fn extract_checked_roundtrips_valid_input() {
        let ex = tiny_extractor();
        let video = Tensor::from_fn(&[4, 16, 16], |i| (i % 7) as f32 / 7.0);
        let scenario = ex.extract_checked(&video).unwrap();
        scenario.validate().unwrap();
        let reparsed: Scenario = scenario.to_string().parse().unwrap();
        assert_eq!(reparsed, scenario);
        // Agrees with the panicking path on well-formed input.
        assert_eq!(scenario, ex.extract(&video));
    }

    #[test]
    fn extract_checked_rejects_malformed_input_with_typed_errors() {
        let ex = tiny_extractor();
        assert_eq!(
            ex.extract_checked(&Tensor::zeros(&[2, 4, 16, 16])),
            Err(ExtractError::BadRank { found: 4 })
        );
        assert_eq!(
            ex.extract_checked(&Tensor::zeros(&[4, 8, 16])),
            Err(ExtractError::BadShape { expected: [4, 16, 16], found: vec![4, 8, 16] })
        );
        let mut bad = Tensor::zeros(&[4, 16, 16]);
        bad.set(&[1, 2, 3], f32::NAN);
        let flat = (16 * 16) + 2 * 16 + 3;
        assert_eq!(ex.extract_checked(&bad), Err(ExtractError::NonFinite { index: flat }));
        let mut inf = Tensor::zeros(&[4, 16, 16]);
        inf.set(&[0, 0, 0], f32::INFINITY);
        assert_eq!(inf.rank(), 3);
        assert_eq!(ex.extract_checked(&inf), Err(ExtractError::NonFinite { index: 0 }));
    }
}
