//! The video scenario transformer and the [`ClipModel`] abstraction shared
//! with the baselines.

use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_data::{ClipLabels, POSITION_COUNT};
use tsdx_nn::{Binding, ParamStore, QuantizedWeights};
use tsdx_sdl::{vocab, ActorKind, EgoManeuver, RoadKind};
use tsdx_tensor::{metrics, ops, Graph, Tensor};

use crate::precision::{self, Precision};

use crate::config::ModelConfig;
use crate::encoder::ClipEncoder;
use crate::heads::{HeadLogits, SdlHeads};
use crate::tubelet::{extract_tubelets, TubeletEmbed};

/// Anything that maps a video batch to SDL head logits and can be trained.
///
/// Implemented by the video scenario transformer here and by the learned
/// baselines in `tsdx-baselines`, so the training loop and evaluation
/// harness are shared.
pub trait ClipModel {
    /// The parameter store holding all trainable tensors.
    fn params(&self) -> &ParamStore;

    /// Mutable access for optimizers and checkpoint loading.
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Builds the forward pass for `videos` (`[B, T, H, W]`) on the tape.
    ///
    /// `rng` drives dropout when `train` is true.
    fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        videos: &Tensor,
        rng: &mut StdRng,
        train: bool,
    ) -> HeadLogits;

    /// Human-readable model name for reports.
    fn name(&self) -> &str;

    /// Binds the parameters for an eval-time (frozen) forward pass.
    ///
    /// The default is [`ParamStore::bind_frozen`]; precision-aware models
    /// override this to honor the `TSDX_PRECISION` dial (the video
    /// scenario transformer routes int8 bindings through its prepacked
    /// quantized weights). Training bindings are unaffected.
    fn bind_eval(&self, g: &mut Graph) -> Binding {
        self.params().bind_frozen(g)
    }
}

/// Decodes head logit *values* into per-clip labels (argmax heads,
/// presence threshold 0.5 on the sigmoid).
pub fn decode_logits(
    ego: &Tensor,
    road: &Tensor,
    event: &Tensor,
    position: &Tensor,
    presence: &Tensor,
) -> Vec<ClipLabels> {
    let b = ego.shape()[0];
    assert!(ego.shape() == [b, EgoManeuver::COUNT], "bad ego logits shape");
    assert!(road.shape() == [b, RoadKind::COUNT], "bad road logits shape");
    assert!(event.shape() == [b, vocab::EVENT_COUNT], "bad event logits shape");
    assert!(position.shape() == [b, POSITION_COUNT], "bad position logits shape");
    assert!(presence.shape() == [b, ActorKind::COUNT], "bad presence logits shape");
    let ego_idx = ops::argmax_last(ego);
    let road_idx = ops::argmax_last(road);
    let event_idx = ops::argmax_last(event);
    let pos_idx = ops::argmax_last(position);
    (0..b)
        .map(|i| {
            let mut pres = [0.0f32; ActorKind::COUNT];
            for (k, slot) in pres.iter_mut().enumerate() {
                // Sigmoid(logit) >= 0.5 <=> logit >= 0.
                *slot = if presence.at(&[i, k]) >= 0.0 { 1.0 } else { 0.0 };
            }
            ClipLabels {
                ego: ego_idx.data()[i] as usize,
                road: road_idx.data()[i] as usize,
                event: event_idx.data()[i] as usize,
                position: pos_idx.data()[i] as usize,
                presence: pres,
            }
        })
        .collect()
}

/// The paper's model: tubelet embedding, factorized (or joint) space-time
/// transformer encoder, and multi-task SDL heads.
///
/// # Examples
///
/// ```
/// use tsdx_core::{ModelConfig, VideoScenarioTransformer};
/// let model = VideoScenarioTransformer::new(ModelConfig::default(), 42);
/// assert!(model.num_params() > 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct VideoScenarioTransformer {
    cfg: ModelConfig,
    store: ParamStore,
    embed: TubeletEmbed,
    encoder: ClipEncoder,
    heads: SdlHeads,
    /// Lazily-built prepacked int8 weights for `TSDX_PRECISION=int8`
    /// bindings, invalidated whenever the parameters can change
    /// ([`ClipModel::params_mut`] is the mutation choke point used by
    /// optimizers and checkpoint loading).
    quant: OnceLock<Arc<QuantizedWeights>>,
}

impl VideoScenarioTransformer {
    /// Builds a model with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ModelConfig::validate`].
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid model configuration");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let embed = TubeletEmbed::new(&mut store, &mut rng, "embed", &cfg);
        let encoder = ClipEncoder::new(&mut store, &mut rng, "encoder", &cfg);
        let heads = SdlHeads::new(&mut store, &mut rng, "heads", cfg.dim);
        VideoScenarioTransformer { cfg, store, embed, encoder, heads, quant: OnceLock::new() }
    }

    /// The prepacked int8 weights for this model's current parameters,
    /// building them on first use: every rank-2 `.weight` matrix of the
    /// encoder (attention Q/K/V/O and MLP projections) and the SDL heads.
    /// The tubelet embedding stays f32 — first-layer quantization costs
    /// the most accuracy for the least time, the standard PTQ trade.
    pub fn quantized_weights(&self) -> Arc<QuantizedWeights> {
        self.quant
            .get_or_init(|| {
                Arc::new(self.store.quantize_where(|name, t| {
                    t.rank() == 2
                        && name.ends_with(".weight")
                        && (name.starts_with("encoder.") || name.starts_with("heads."))
                }))
            })
            .clone()
    }

    /// Precision-aware frozen binding: `bind_frozen` under
    /// [`Precision::F32`] (bit-identical to the pre-quantization path),
    /// `bind_quantized` with the cached packed weights under
    /// [`Precision::Int8`].
    pub fn bind_eval_active(&self, g: &mut Graph) -> Binding {
        match precision::active() {
            Precision::F32 => self.store.bind_frozen(g),
            Precision::Int8 => self.store.bind_quantized(g, &self.quantized_weights()),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Computes the clip embedding (`[B, D]`) for a video batch without the
    /// heads — used for representation probing and retrieval.
    pub fn embed_clips(&self, videos: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let p = self.bind_eval_active(&mut g);
        let mut rng = StdRng::seed_from_u64(0);
        let tubs = g.constant(extract_tubelets(&self.cfg, videos));
        let tokens = self.embed.forward(&mut g, &p, tubs);
        let emb = self.encoder.forward(&mut g, &p, tokens, &mut rng, false);
        g.value(emb).clone()
    }

    pub(crate) fn params_ref(&self) -> &ParamStore {
        &self.store
    }

    pub(crate) fn embed_ref(&self) -> &TubeletEmbed {
        &self.embed
    }

    pub(crate) fn encoder_ref(&self) -> &ClipEncoder {
        &self.encoder
    }

    pub(crate) fn heads_ref(&self) -> &SdlHeads {
        &self.heads
    }

    /// Encodes a batch of complete time groups — each `tubelet_t * H * W`
    /// pixels — through the cacheable stage in **one forward** along the
    /// batch dimension, returning one stage output per group (factorized:
    /// the frame summary `[D]`; joint: projected tokens `[n_space, D]`).
    ///
    /// The tubelet embedding and the spatial encoder are free of temporal
    /// position and row-independent across the batch dimension (the PR 6
    /// invariant behind group caching), so stacking groups gathered from
    /// *different streams* is sound: row `i` of the batched forward is
    /// bit-identical to encoding group `i` alone. This is the amortization
    /// primitive behind cross-stream multiplexing — N streams completing a
    /// group in the same tick pay one forward at batch N instead of N
    /// forwards at batch 1.
    ///
    /// # Panics
    ///
    /// Panics if any group has the wrong pixel count.
    pub fn encode_group_batch(&self, groups: &[&[f32]]) -> Vec<Tensor> {
        let cfg = &self.cfg;
        let n = groups.len();
        if n == 0 {
            return Vec::new();
        }
        let group_len = cfg.tubelet_t * cfg.height * cfg.width;
        let mut pixels = Vec::with_capacity(n * group_len);
        for (i, group) in groups.iter().enumerate() {
            assert_eq!(group.len(), group_len, "group {i} has the wrong pixel count");
            pixels.extend_from_slice(group);
        }
        metrics::stage("stage/mux_encode", || {
            // One batch row per group: [N, tubelet_t, H, W].
            let batch = Tensor::from_vec(pixels, &[n, cfg.tubelet_t, cfg.height, cfg.width]);
            let tubs = extract_tubelets(cfg, &batch); // [N, ns, vol]
            let mut g = Graph::new();
            let p = self.bind_eval_active(&mut g);
            let mut rng = StdRng::seed_from_u64(0);
            let t = g.constant(tubs);
            let tokens = self.embed.forward(&mut g, &p, t); // [N, ns, D]
            match cfg.attention {
                crate::config::AttentionKind::Factorized => {
                    let summaries =
                        self.encoder.spatial_summaries(&mut g, &p, tokens, &mut rng, false);
                    let v = g.value(summaries); // [N, D]
                    let data = v.contiguous();
                    let data = data.data();
                    (0..n)
                        .map(|i| {
                            Tensor::from_vec(
                                data[i * cfg.dim..(i + 1) * cfg.dim].to_vec(),
                                &[cfg.dim],
                            )
                        })
                        .collect()
                }
                crate::config::AttentionKind::Joint => {
                    let v = g.value(tokens); // [N, ns, D]
                    let data = v.contiguous();
                    let data = data.data();
                    let stride = cfg.n_space() * cfg.dim;
                    (0..n)
                        .map(|i| {
                            Tensor::from_vec(
                                data[i * stride..(i + 1) * stride].to_vec(),
                                &[cfg.n_space(), cfg.dim],
                            )
                        })
                        .collect()
                }
            }
        })
    }

    /// Runs inference on a video batch, returning decoded labels.
    ///
    /// When metrics are enabled, each pipeline stage records a latency
    /// histogram: `stage/tubelet_embed`, `stage/encoder`, `stage/heads`
    /// (from [`ClipModel::forward`]) and `stage/decode` here.
    pub fn predict(&self, videos: &Tensor) -> Vec<ClipLabels> {
        let mut g = Graph::new();
        let p = self.bind_eval_active(&mut g);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = self.forward(&mut g, &p, videos, &mut rng, false);
        metrics::stage("stage/decode", || {
            decode_logits(
                g.value(logits.ego),
                g.value(logits.road),
                g.value(logits.event),
                g.value(logits.position),
                g.value(logits.presence),
            )
        })
    }
}

impl ClipModel for VideoScenarioTransformer {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        // The caller may mutate any parameter: drop the packed int8 cache
        // so the next quantized binding re-quantizes the new values.
        self.quant.take();
        &mut self.store
    }

    fn bind_eval(&self, g: &mut Graph) -> Binding {
        self.bind_eval_active(g)
    }

    fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        videos: &Tensor,
        rng: &mut StdRng,
        train: bool,
    ) -> HeadLogits {
        // Streamed pushes may extract partial windows, but the batched
        // forward is strictly whole-window.
        assert_eq!(
            videos.shape()[1],
            self.cfg.frames,
            "expected {} frames per clip, got {}",
            self.cfg.frames,
            videos.shape()[1]
        );
        // Ops execute eagerly as the tape is built, so timing each stage of
        // tape construction times the forward compute itself.
        let tokens = metrics::stage("stage/tubelet_embed", || {
            let tubs = g.constant(extract_tubelets(&self.cfg, videos));
            self.embed.forward(g, p, tubs)
        });
        let emb =
            metrics::stage("stage/encoder", || self.encoder.forward(g, p, tokens, rng, train));
        metrics::stage("stage/heads", || self.heads.forward(g, p, emb))
    }

    fn name(&self) -> &str {
        "video-transformer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttentionKind, Readout};

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            mlp_ratio: 2,
            dropout: 0.0,
            attention: AttentionKind::Factorized,
            readout: Readout::Cls,
        }
    }

    #[test]
    fn forward_shapes_and_decode() {
        let model = VideoScenarioTransformer::new(tiny_cfg(), 0);
        let videos = Tensor::from_fn(&[3, 4, 16, 16], |i| (i % 7) as f32 / 7.0);
        let labels = model.predict(&videos);
        assert_eq!(labels.len(), 3);
        for l in &labels {
            assert!(l.ego < EgoManeuver::COUNT);
            assert!(l.road < RoadKind::COUNT);
            assert!(l.event < vocab::EVENT_COUNT);
            assert!(l.position < POSITION_COUNT);
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let model = VideoScenarioTransformer::new(tiny_cfg(), 1);
        let videos = Tensor::from_fn(&[2, 4, 16, 16], |i| (i % 5) as f32 / 5.0);
        assert_eq!(model.predict(&videos), model.predict(&videos));
    }

    #[test]
    fn same_seed_same_model() {
        let a = VideoScenarioTransformer::new(tiny_cfg(), 7);
        let b = VideoScenarioTransformer::new(tiny_cfg(), 7);
        let videos = Tensor::from_fn(&[1, 4, 16, 16], |i| (i % 3) as f32 / 3.0);
        assert_eq!(a.predict(&videos), b.predict(&videos));
        let c = VideoScenarioTransformer::new(tiny_cfg(), 8);
        assert_eq!(a.num_params(), c.num_params());
    }

    #[test]
    fn embeddings_have_model_width() {
        let model = VideoScenarioTransformer::new(tiny_cfg(), 2);
        let videos = Tensor::zeros(&[2, 4, 16, 16]);
        let emb = model.embed_clips(&videos);
        assert_eq!(emb.shape(), &[2, 16]);
    }

    #[test]
    fn decode_logits_thresholds_presence_at_zero() {
        let ego = Tensor::zeros(&[1, EgoManeuver::COUNT]);
        let road = Tensor::zeros(&[1, RoadKind::COUNT]);
        let event = Tensor::zeros(&[1, vocab::EVENT_COUNT]);
        let position = Tensor::zeros(&[1, POSITION_COUNT]);
        let presence = Tensor::from_vec(vec![1.5, -0.5, 0.0], &[1, 3]);
        let labels = decode_logits(&ego, &road, &event, &position, &presence);
        assert_eq!(labels[0].presence, [1.0, 0.0, 1.0]);
    }
}
