//! The `TSDX_PRECISION` inference dial.
//!
//! `TSDX_PRECISION=f32` (the default) keeps every inference path on the
//! f32 kernels — bit-identical to the pre-quantization behavior.
//! `TSDX_PRECISION=int8` routes the eval-time bindings of the video
//! scenario transformer ([`crate::VideoScenarioTransformer`]'s `predict`,
//! `extract_checked`, and [`crate::StreamSession`]) through prepacked
//! per-channel int8 weights and the exact-integer i8 GEMM
//! ([`tsdx_tensor::quant`]). Training always runs f32: the dial only
//! affects frozen (inference) bindings.
//!
//! The environment variable is read **once** per process, like
//! `TSDX_NUM_THREADS` and `TSDX_WORKSPACE`; [`with_forced`] overrides the
//! choice per thread so one process can A/B both planes (the accuracy
//! gate and `quantbench` do exactly that).

use std::cell::Cell;
use std::sync::OnceLock;

/// Numeric plane used by eval-time (frozen) model bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Full-precision kernels — the bit-parity reference.
    F32,
    /// Per-channel int8 weights + dynamic per-row int8 activations.
    Int8,
}

impl Precision {
    /// The dial value's spelling (`"f32"` / `"int8"`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    /// Parses the dial spelling (`"f32"` / `"int8"`), as accepted by
    /// `TSDX_PRECISION` — used by servers and CLIs that take the plane as
    /// configuration instead of (or overriding) the environment.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!("precision must be \"f32\" or \"int8\", got {other:?}")),
        }
    }
}

fn from_env() -> Precision {
    static ENV: OnceLock<Precision> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("TSDX_PRECISION") {
        Err(std::env::VarError::NotPresent) => Precision::F32,
        Ok(v) if v == "f32" => Precision::F32,
        Ok(v) if v == "int8" => Precision::Int8,
        v => panic!("TSDX_PRECISION must be \"f32\" or \"int8\", got {v:?}"),
    })
}

thread_local! {
    static FORCED: Cell<Option<Precision>> = const { Cell::new(None) };
}

/// The active precision: a per-thread [`with_forced`] override when one is
/// in effect, else `TSDX_PRECISION` (read once per process; default
/// [`Precision::F32`]).
///
/// # Panics
///
/// Panics if `TSDX_PRECISION` is set to anything but `f32` or `int8`.
pub fn active() -> Precision {
    FORCED.with(|c| c.get()).unwrap_or_else(from_env)
}

/// Runs `f` with the active precision forced to `p` on this thread
/// (restored on exit, even across nested uses).
pub fn with_forced<R>(p: Precision, f: impl FnOnce() -> R) -> R {
    FORCED.with(|c| {
        let prev = c.replace(Some(p));
        let out = f();
        c.set(prev);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f32_and_forcing_nests() {
        // The suite also runs under TSDX_PRECISION=int8 (check.sh), so
        // only pin the default when the dial is genuinely unset.
        if std::env::var("TSDX_PRECISION").is_err() {
            assert_eq!(active(), Precision::F32);
        }
        with_forced(Precision::Int8, || {
            assert_eq!(active(), Precision::Int8);
            with_forced(Precision::F32, || assert_eq!(active(), Precision::F32));
            assert_eq!(active(), Precision::Int8);
        });
        assert_eq!(Precision::Int8.label(), "int8");
    }

    #[test]
    fn parses_dial_spellings() {
        assert_eq!("f32".parse::<Precision>(), Ok(Precision::F32));
        assert_eq!("int8".parse::<Precision>(), Ok(Precision::Int8));
        assert!("fp16".parse::<Precision>().is_err());
        assert!("".parse::<Precision>().is_err());
    }
}
