//! # tsdx-core
//!
//! The paper's primary contribution: **automated traffic scenario
//! description extraction using video transformers**. An ego-camera video
//! clip is cut into spatio-temporal tubelets, encoded with a factorized
//! (or joint) space-time transformer, and decoded by multi-task heads into
//! a validated SDL [`Scenario`](tsdx_sdl::Scenario).
//!
//! Entry points:
//!
//! * [`ScenarioExtractor`] — end-to-end video → SDL API;
//! * [`VideoScenarioTransformer`] — the model itself;
//! * [`train`] / [`evaluate`] — the shared training and evaluation harness
//!   (also used by the baselines through the [`ClipModel`] trait);
//! * [`clip_macs`] — analytic compute cost for the ablation figures.
//!
//! # Examples
//!
//! ```
//! use tsdx_core::{ModelConfig, VideoScenarioTransformer};
//!
//! // A tiny config so this doc test stays fast.
//! let cfg = ModelConfig {
//!     frames: 4, height: 16, width: 16, tubelet_t: 2, patch: 8,
//!     dim: 16, spatial_depth: 1, temporal_depth: 1, heads: 2,
//!     ..ModelConfig::default()
//! };
//! let model = VideoScenarioTransformer::new(cfg, 0);
//! let video = tsdx_tensor::Tensor::zeros(&[1, 4, 16, 16]);
//! let labels = model.predict(&video);
//! assert_eq!(labels.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attention_map;
mod config;
mod encoder;
mod extract;
mod flops;
mod heads;
mod model;
pub mod precision;
mod session;
mod telemetry;
mod train;
mod tubelet;

pub use config::{AttentionKind, ModelConfig, Readout};
pub use encoder::ClipEncoder;
pub use extract::ExtractError;
pub use extract::{QuantReport, ScenarioExtractor};
pub use flops::clip_macs;
pub use heads::{multitask_loss, HeadLogits, LossWeights, SdlHeads};
pub use model::{decode_logits, ClipModel, VideoScenarioTransformer};
pub use session::{encode_staged, MuxEncodeReport, StreamSession, StreamState, WindowLogits};
pub use telemetry::{LogLevel, TrainLogger};
pub use train::{
    evaluate, predict_labels, summarize, train, train_resilient, EvalSummary, ResilienceConfig,
    TrainConfig, TrainError, TrainReport,
};
pub use tubelet::{extract_tubelets, TubeletEmbed};
