//! Label vocabularies shared by models and metrics.
//!
//! The extraction heads predict four quantities per clip:
//!
//! * ego maneuver — [`EgoManeuver::COUNT`](crate::EgoManeuver::COUNT)-way classification;
//! * road kind — [`RoadKind::COUNT`](crate::RoadKind::COUNT)-way classification;
//! * primary event — [`EVENT_COUNT`]-way classification over valid
//!   (actor kind, action) combinations plus an explicit *none* class;
//! * actor presence — [`ActorKind::COUNT`]-way multi-label vector.

use crate::ast::{ActorAction, ActorKind};

/// All semantically valid `(kind, action)` combinations, in label order.
///
/// Vehicles take every action; pedestrians only cross or stand; cyclists
/// cross, ride toward, or ride ahead of the ego vehicle.
pub const EVENT_CLASSES: &[(ActorKind, ActorAction)] = &[
    (ActorKind::Vehicle, ActorAction::Crossing),
    (ActorKind::Vehicle, ActorAction::Oncoming),
    (ActorKind::Vehicle, ActorAction::Leading),
    (ActorKind::Vehicle, ActorAction::CutIn),
    (ActorKind::Vehicle, ActorAction::Overtaking),
    (ActorKind::Vehicle, ActorAction::Stopped),
    (ActorKind::Vehicle, ActorAction::Following),
    (ActorKind::Pedestrian, ActorAction::Crossing),
    (ActorKind::Pedestrian, ActorAction::Stopped),
    (ActorKind::Cyclist, ActorAction::Crossing),
    (ActorKind::Cyclist, ActorAction::Oncoming),
    (ActorKind::Cyclist, ActorAction::Leading),
];

/// Number of event classes including the trailing *none* class.
pub const EVENT_COUNT: usize = EVENT_CLASSES.len() + 1;

/// Label index of the *none* event (no salient actor).
pub const EVENT_NONE: usize = EVENT_CLASSES.len();

/// True when `(kind, action)` is part of the SDL taxonomy.
pub fn is_valid_event(kind: ActorKind, action: ActorAction) -> bool {
    EVENT_CLASSES.contains(&(kind, action))
}

/// Label index of a valid `(kind, action)` pair.
///
/// Returns `None` for combinations outside the taxonomy.
pub fn event_index(kind: ActorKind, action: ActorAction) -> Option<usize> {
    EVENT_CLASSES.iter().position(|&e| e == (kind, action))
}

/// Inverse of [`event_index`]; `None` for the *none* class.
///
/// # Panics
///
/// Panics if `index >= EVENT_COUNT`.
pub fn event_from_index(index: usize) -> Option<(ActorKind, ActorAction)> {
    assert!(index < EVENT_COUNT, "event index {index} out of range");
    EVENT_CLASSES.get(index).copied()
}

/// Human-readable name of an event class (including "none").
pub fn event_name(index: usize) -> String {
    match event_from_index(index) {
        Some((k, a)) => format!("{k} {a}"),
        None => "none".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_indices_roundtrip() {
        for (i, &(k, a)) in EVENT_CLASSES.iter().enumerate() {
            assert_eq!(event_index(k, a), Some(i));
            assert_eq!(event_from_index(i), Some((k, a)));
        }
        assert_eq!(event_from_index(EVENT_NONE), None);
    }

    #[test]
    fn taxonomy_shape() {
        assert_eq!(EVENT_CLASSES.len(), 12);
        assert_eq!(EVENT_COUNT, 13);
        assert!(is_valid_event(ActorKind::Vehicle, ActorAction::CutIn));
        assert!(!is_valid_event(ActorKind::Pedestrian, ActorAction::CutIn));
        assert!(!is_valid_event(ActorKind::Cyclist, ActorAction::Overtaking));
    }

    #[test]
    fn event_names_are_readable() {
        assert_eq!(event_name(0), "vehicle crossing");
        assert_eq!(event_name(EVENT_NONE), "none");
    }

    #[test]
    #[should_panic]
    fn event_from_index_rejects_out_of_range() {
        event_from_index(EVENT_COUNT);
    }
}
