//! Canonical text form of SDL scenarios: printing and parsing.
//!
//! The grammar (clauses separated by `;`):
//!
//! ```text
//! scenario     := ego_clause (";" actor_clause)* ";" road_clause
//! ego_clause   := "ego" maneuver
//! actor_clause := actor_kind action [position]
//! road_clause  := "road" road_kind
//! ```

use std::fmt;

use crate::ast::{ActorClause, ParseTokenError, Scenario};

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ego {}", self.ego)?;
        for a in &self.actors {
            write!(f, "; {a}")?;
        }
        write!(f, "; road {}", self.road)
    }
}

/// Error produced when parsing an SDL scenario string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseScenarioError {
    /// A clause had the wrong arity or keyword.
    Malformed {
        /// The offending clause text.
        clause: String,
        /// What was expected instead.
        expected: &'static str,
    },
    /// A token was not in the relevant vocabulary.
    Token(ParseTokenError),
    /// The required ego or road clause was missing.
    MissingClause(&'static str),
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseScenarioError::Malformed { clause, expected } => {
                write!(f, "malformed clause `{clause}`, expected {expected}")
            }
            ParseScenarioError::Token(e) => write!(f, "{e}"),
            ParseScenarioError::MissingClause(which) => write!(f, "missing {which} clause"),
        }
    }
}

impl std::error::Error for ParseScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseScenarioError::Token(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseTokenError> for ParseScenarioError {
    fn from(e: ParseTokenError) -> Self {
        ParseScenarioError::Token(e)
    }
}

/// Parses the canonical text form produced by `Scenario`'s `Display`.
///
/// Whitespace around clauses is tolerated; clause order must be
/// ego-actors-road.
///
/// # Errors
///
/// Returns a [`ParseScenarioError`] describing the first problem found.
///
/// # Examples
///
/// ```
/// use tsdx_sdl::parse_scenario;
/// let s = parse_scenario("ego cruise; vehicle leading ahead; road straight")?;
/// assert_eq!(s.actors.len(), 1);
/// # Ok::<(), tsdx_sdl::ParseScenarioError>(())
/// ```
pub fn parse_scenario(text: &str) -> Result<Scenario, ParseScenarioError> {
    let mut clauses = text.split(';').map(str::trim).filter(|c| !c.is_empty());

    let ego_clause = clauses.next().ok_or(ParseScenarioError::MissingClause("ego"))?;
    let ego = {
        let mut words = ego_clause.split_whitespace();
        match (words.next(), words.next(), words.next()) {
            (Some("ego"), Some(m), None) => m.parse()?,
            _ => {
                return Err(ParseScenarioError::Malformed {
                    clause: ego_clause.to_string(),
                    expected: "`ego <maneuver>`",
                })
            }
        }
    };

    let rest: Vec<&str> = clauses.collect();
    let (road_clause, actor_clauses) =
        rest.split_last().ok_or(ParseScenarioError::MissingClause("road"))?;

    let road = {
        let mut words = road_clause.split_whitespace();
        match (words.next(), words.next(), words.next()) {
            (Some("road"), Some(r), None) => r.parse()?,
            _ => {
                return Err(ParseScenarioError::Malformed {
                    clause: road_clause.to_string(),
                    expected: "`road <kind>`",
                })
            }
        }
    };

    let mut actors = Vec::with_capacity(actor_clauses.len());
    for clause in actor_clauses {
        let words: Vec<&str> = clause.split_whitespace().collect();
        let actor = match words.as_slice() {
            [kind, action] => {
                ActorClause { kind: kind.parse()?, action: action.parse()?, position: None }
            }
            [kind, action, pos] => ActorClause {
                kind: kind.parse()?,
                action: action.parse()?,
                position: Some(pos.parse()?),
            },
            _ => {
                return Err(ParseScenarioError::Malformed {
                    clause: clause.to_string(),
                    expected: "`<kind> <action> [position]`",
                })
            }
        };
        actors.push(actor);
    }

    Ok(Scenario { ego, actors, road })
}

impl std::str::FromStr for Scenario {
    type Err = ParseScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_scenario(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActorAction, ActorKind, EgoManeuver, Position, RoadKind};

    fn sample() -> Scenario {
        Scenario::new(EgoManeuver::DecelerateToStop, RoadKind::Intersection)
            .with_actor(ActorClause::at(
                ActorKind::Pedestrian,
                ActorAction::Crossing,
                Position::Right,
            ))
            .with_actor(ActorClause::new(ActorKind::Vehicle, ActorAction::Stopped))
    }

    #[test]
    fn print_then_parse_roundtrips() {
        let s = sample();
        let text = s.to_string();
        assert_eq!(
            text,
            "ego decelerate-to-stop; pedestrian crossing right; vehicle stopped; road intersection"
        );
        let parsed: Scenario = text.parse().unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_without_actors() {
        let s = parse_scenario("ego cruise; road straight").unwrap();
        assert_eq!(s.ego, EgoManeuver::Cruise);
        assert!(s.actors.is_empty());
        assert_eq!(s.road, RoadKind::Straight);
    }

    #[test]
    fn parse_tolerates_extra_whitespace() {
        let s = parse_scenario("  ego turn-left ;  vehicle oncoming ahead ;  road intersection ")
            .unwrap();
        assert_eq!(s.ego, EgoManeuver::TurnLeft);
        assert_eq!(s.actors[0].position, Some(Position::Ahead));
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(parse_scenario(""), Err(ParseScenarioError::MissingClause("ego"))));
        assert!(matches!(
            parse_scenario("ego cruise"),
            Err(ParseScenarioError::MissingClause("road"))
        ));
        assert!(matches!(
            parse_scenario("ego warp-speed; road straight"),
            Err(ParseScenarioError::Token(_))
        ));
        assert!(matches!(
            parse_scenario("ego cruise; vehicle; road straight"),
            Err(ParseScenarioError::Malformed { .. })
        ));
        assert!(matches!(
            parse_scenario("ego cruise; pedestrian crossing left extra; road straight"),
            Err(ParseScenarioError::Malformed { .. })
        ));
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let err = parse_scenario("ego warp; road straight").unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("unknown ego maneuver"), "{msg}");
    }
}
