//! # tsdx-sdl
//!
//! The Scenario Description Language (SDL): a typed grammar of traffic
//! scenarios — ego maneuver, actor clauses, and road context — together with
//! its canonical text form, label vocabularies for learned extraction,
//! similarity measures, and Scenario2Vector-style embeddings for retrieval.
//!
//! # Examples
//!
//! ```
//! use tsdx_sdl::{parse_scenario, similarity};
//!
//! let a = parse_scenario("ego decelerate-to-stop; pedestrian crossing right; road intersection")?;
//! let b = parse_scenario("ego decelerate-to-stop; pedestrian crossing left; road intersection")?;
//! let sim = similarity(&a, &b);
//! assert!(sim > 0.5 && sim < 1.0); // same ego & road, near-miss on the actor
//! # Ok::<(), tsdx_sdl::ParseScenarioError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod corpus;
pub mod embed;
mod grammar;
mod nl;
pub mod rank;
mod similarity;
pub mod vocab;

pub use ast::{
    ActorAction, ActorClause, ActorKind, EgoManeuver, ParseTokenError, Position, RoadKind,
    Scenario, ValidateScenarioError, MAX_ACTORS,
};
pub use corpus::{ParseFilterError, ScenarioCorpus, ScenarioFilter};
pub use embed::{cosine, dot, embed, embedding_similarity, is_unit_norm, EMBED_DIM};
pub use grammar::{parse_scenario, ParseScenarioError};
pub use nl::to_sentence;
pub use rank::{rank_order, top_k};
pub use similarity::{distance, similarity, slot_similarity, SimilarityWeights};
