//! Scenario2Vector-style fixed-length scenario embeddings.
//!
//! Scenarios are embedded into a sparse-ish vector whose blocks are:
//! one-hot ego maneuver, one-hot road kind, multi-hot event classes, and a
//! position histogram. Cosine similarity on these vectors drives the
//! retrieval experiments (Table 3).

use crate::ast::{EgoManeuver, Position, RoadKind, Scenario};
use crate::vocab::{event_index, EVENT_COUNT, EVENT_NONE};

/// Dimensionality of [`embed`] vectors.
pub const EMBED_DIM: usize = EgoManeuver::COUNT + RoadKind::COUNT + EVENT_COUNT + Position::COUNT;

/// Embeds a scenario as an L2-normalized vector of length [`EMBED_DIM`].
///
/// Unknown/invalid actor combinations are skipped (the embedding is total).
pub fn embed(s: &Scenario) -> Vec<f32> {
    let mut v = vec![0.0f32; EMBED_DIM];
    v[s.ego.index()] = 1.0;
    let road_base = EgoManeuver::COUNT;
    v[road_base + s.road.index()] = 1.0;
    let event_base = road_base + RoadKind::COUNT;
    let pos_base = event_base + EVENT_COUNT;
    if s.actors.is_empty() {
        v[event_base + EVENT_NONE] = 1.0;
    }
    for a in &s.actors {
        if let Some(e) = event_index(a.kind, a.action) {
            v[event_base + e] += 1.0;
        }
        if let Some(p) = a.position {
            v[pos_base + p.index()] += 1.0;
        }
    }
    l2_normalize(&mut v);
    v
}

/// Cosine similarity between two equally-sized vectors.
///
/// Returns 0 when either vector is all-zero. This is the general-input
/// entry point: it recomputes both norms, so it is correct for arbitrary
/// vectors. Hot scan loops over embeddings that [`embed`] produced should
/// use [`dot`] instead — those vectors are unit-norm by construction, so
/// the dot product *is* the cosine and both `sqrt`s plus the division are
/// pure waste per corpus entry.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Dot product of two equally-sized vectors — the unit-norm fast path for
/// similarity scans.
///
/// For vectors produced by [`embed`] (L2-normalized, see
/// [`is_unit_norm`]) the dot product equals the cosine similarity, without
/// recomputing two norms per corpus entry. Four independent accumulator
/// lanes keep the loop free of a serial dependency chain so it
/// autovectorizes; the lane split is a pure function of the slice length,
/// so the result is bit-identical no matter how the surrounding scan is
/// sharded or threaded.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut lanes = [0.0f32; 4];
    let (a4, a_tail) = a.split_at(a.len() & !3);
    let (b4, b_tail) = b.split_at(b.len() & !3);
    for (x, y) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        for l in 0..4 {
            lanes[l] += x[l] * y[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// True when `v` is L2-normalized to within `1e-4` — the invariant every
/// stored [`embed`] vector satisfies. Scan fast paths assert it in debug
/// builds before trusting [`dot`] as a cosine.
pub fn is_unit_norm(v: &[f32]) -> bool {
    let n2: f32 = v.iter().map(|&x| x * x).sum();
    (n2 - 1.0).abs() <= 1e-4
}

/// Cosine similarity of two scenarios' embeddings.
pub fn embedding_similarity(a: &Scenario, b: &Scenario) -> f32 {
    cosine(&embed(a), &embed(b))
}

fn l2_normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActorAction, ActorClause, ActorKind};

    fn s1() -> Scenario {
        Scenario::new(EgoManeuver::Cruise, RoadKind::Straight).with_actor(ActorClause::at(
            ActorKind::Vehicle,
            ActorAction::Leading,
            Position::Ahead,
        ))
    }

    #[test]
    fn embedding_has_unit_norm() {
        let v = embed(&s1());
        assert_eq!(v.len(), EMBED_DIM);
        let n: f32 = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn self_similarity_is_one() {
        assert!((embedding_similarity(&s1(), &s1()) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_actor_scenario_sets_none_flag() {
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        let v = embed(&s);
        let event_base = EgoManeuver::COUNT + RoadKind::COUNT;
        assert!(v[event_base + EVENT_NONE] > 0.0);
    }

    #[test]
    fn closer_scenarios_have_higher_similarity() {
        let a = s1();
        // Same everything but road differs.
        let mut near = s1();
        near.road = RoadKind::CurveLeft;
        // Different ego, road, and actor.
        let far = Scenario::new(EgoManeuver::TurnRight, RoadKind::Intersection)
            .with_actor(ActorClause::new(ActorKind::Pedestrian, ActorAction::Crossing));
        assert!(embedding_similarity(&a, &near) > embedding_similarity(&a, &far));
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn dot_equals_cosine_on_unit_vectors() {
        let a = embed(&s1());
        let b = embed(&Scenario::new(EgoManeuver::Accelerate, RoadKind::Intersection));
        assert!(is_unit_norm(&a) && is_unit_norm(&b));
        assert!((dot(&a, &b) - cosine(&a, &b)).abs() < 1e-6);
        assert!((dot(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dot_handles_every_tail_length() {
        for n in 0..9 {
            let a: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 0.25).collect();
            let reference: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert!((dot(&a, &b) - reference).abs() < 1e-4, "n={n}");
        }
    }

    #[test]
    fn unit_norm_check_rejects_unnormalized_and_poisoned_vectors() {
        assert!(is_unit_norm(&[1.0, 0.0, 0.0]));
        assert!(!is_unit_norm(&[1.0, 1.0]));
        assert!(!is_unit_norm(&[0.0; 4]));
        assert!(!is_unit_norm(&[f32::NAN, 0.0]));
    }

    #[test]
    fn cosine_is_bounded() {
        let a = embed(&s1());
        let b = embed(&Scenario::new(EgoManeuver::Accelerate, RoadKind::Intersection));
        let c = cosine(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
    }
}
