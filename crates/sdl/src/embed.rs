//! Scenario2Vector-style fixed-length scenario embeddings.
//!
//! Scenarios are embedded into a sparse-ish vector whose blocks are:
//! one-hot ego maneuver, one-hot road kind, multi-hot event classes, and a
//! position histogram. Cosine similarity on these vectors drives the
//! retrieval experiments (Table 3).

use crate::ast::{EgoManeuver, Position, RoadKind, Scenario};
use crate::vocab::{event_index, EVENT_COUNT, EVENT_NONE};

/// Dimensionality of [`embed`] vectors.
pub const EMBED_DIM: usize = EgoManeuver::COUNT + RoadKind::COUNT + EVENT_COUNT + Position::COUNT;

/// Embeds a scenario as an L2-normalized vector of length [`EMBED_DIM`].
///
/// Unknown/invalid actor combinations are skipped (the embedding is total).
pub fn embed(s: &Scenario) -> Vec<f32> {
    let mut v = vec![0.0f32; EMBED_DIM];
    v[s.ego.index()] = 1.0;
    let road_base = EgoManeuver::COUNT;
    v[road_base + s.road.index()] = 1.0;
    let event_base = road_base + RoadKind::COUNT;
    let pos_base = event_base + EVENT_COUNT;
    if s.actors.is_empty() {
        v[event_base + EVENT_NONE] = 1.0;
    }
    for a in &s.actors {
        if let Some(e) = event_index(a.kind, a.action) {
            v[event_base + e] += 1.0;
        }
        if let Some(p) = a.position {
            v[pos_base + p.index()] += 1.0;
        }
    }
    l2_normalize(&mut v);
    v
}

/// Cosine similarity between two equally-sized vectors.
///
/// Returns 0 when either vector is all-zero.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine similarity of two scenarios' embeddings.
pub fn embedding_similarity(a: &Scenario, b: &Scenario) -> f32 {
    cosine(&embed(a), &embed(b))
}

fn l2_normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActorAction, ActorClause, ActorKind};

    fn s1() -> Scenario {
        Scenario::new(EgoManeuver::Cruise, RoadKind::Straight).with_actor(ActorClause::at(
            ActorKind::Vehicle,
            ActorAction::Leading,
            Position::Ahead,
        ))
    }

    #[test]
    fn embedding_has_unit_norm() {
        let v = embed(&s1());
        assert_eq!(v.len(), EMBED_DIM);
        let n: f32 = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn self_similarity_is_one() {
        assert!((embedding_similarity(&s1(), &s1()) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_actor_scenario_sets_none_flag() {
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        let v = embed(&s);
        let event_base = EgoManeuver::COUNT + RoadKind::COUNT;
        assert!(v[event_base + EVENT_NONE] > 0.0);
    }

    #[test]
    fn closer_scenarios_have_higher_similarity() {
        let a = s1();
        // Same everything but road differs.
        let mut near = s1();
        near.road = RoadKind::CurveLeft;
        // Different ego, road, and actor.
        let far = Scenario::new(EgoManeuver::TurnRight, RoadKind::Intersection)
            .with_actor(ActorClause::new(ActorKind::Pedestrian, ActorAction::Crossing));
        assert!(embedding_similarity(&a, &near) > embedding_similarity(&a, &far));
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_is_bounded() {
        let a = embed(&s1());
        let b = embed(&Scenario::new(EgoManeuver::Accelerate, RoadKind::Intersection));
        let c = cosine(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
    }
}
