//! Typed abstract syntax of the Scenario Description Language (SDL).
//!
//! A [`Scenario`] is the structured answer to "what happened in this clip":
//! what the ego vehicle did, which other actors were involved and how, and
//! what kind of road the interaction took place on.

use std::fmt;
use std::str::FromStr;

/// Error returned when a name does not match any SDL vocabulary entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTokenError {
    token: String,
    expected: &'static str,
}

impl ParseTokenError {
    fn new(token: &str, expected: &'static str) -> Self {
        ParseTokenError { token: token.to_string(), expected }
    }

    /// The offending token.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} `{}`", self.expected, self.token)
    }
}

impl std::error::Error for ParseTokenError {}

macro_rules! sdl_enum {
    (
        $(#[$meta:meta])*
        $name:ident, $expected:literal {
            $( $(#[$vmeta:meta])* $variant:ident => $text:literal ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum $name {
            $( $(#[$vmeta])* $variant ),+
        }

        impl $name {
            /// Every variant, in vocabulary (index) order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant ),+ ];

            /// Number of variants.
            pub const COUNT: usize = Self::ALL.len();

            /// Canonical lowercase SDL spelling.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $( $name::$variant => $text ),+
                }
            }

            /// Stable index into [`Self::ALL`] (used as a class label).
            pub fn index(&self) -> usize {
                Self::ALL.iter().position(|v| v == self).expect("variant in ALL")
            }

            /// Inverse of [`Self::index`].
            ///
            /// # Panics
            ///
            /// Panics if `i >= Self::COUNT`.
            pub fn from_index(i: usize) -> $name {
                Self::ALL[i]
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl FromStr for $name {
            type Err = ParseTokenError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $( $text => Ok($name::$variant), )+
                    other => Err(ParseTokenError::new(other, $expected)),
                }
            }
        }
    };
}

sdl_enum! {
    /// What the ego vehicle is doing over the clip.
    EgoManeuver, "ego maneuver" {
        /// Steady lane keeping at roughly constant speed.
        Cruise => "cruise",
        /// Braking to a standstill (e.g. for a crossing actor or stop line).
        DecelerateToStop => "decelerate-to-stop",
        /// Left turn at an intersection.
        TurnLeft => "turn-left",
        /// Right turn at an intersection.
        TurnRight => "turn-right",
        /// Lane change to the left.
        LaneChangeLeft => "lane-change-left",
        /// Lane change to the right.
        LaneChangeRight => "lane-change-right",
        /// Noticeable speed-up from low speed.
        Accelerate => "accelerate",
    }
}

sdl_enum! {
    /// Category of a non-ego traffic participant.
    ActorKind, "actor kind" {
        /// Another car/truck.
        Vehicle => "vehicle",
        /// A person on foot.
        Pedestrian => "pedestrian",
        /// A person on a bicycle.
        Cyclist => "cyclist",
    }
}

sdl_enum! {
    /// What the actor is doing relative to the ego vehicle.
    ActorAction, "actor action" {
        /// Crossing the ego vehicle's path laterally.
        Crossing => "crossing",
        /// Approaching in the opposing lane.
        Oncoming => "oncoming",
        /// Driving ahead in the same lane, same direction.
        Leading => "leading",
        /// Merging into the ego lane directly ahead.
        CutIn => "cut-in",
        /// Passing the ego vehicle in an adjacent lane.
        Overtaking => "overtaking",
        /// Stationary in or near the ego path.
        Stopped => "stopped",
        /// Trailing the ego vehicle in the same lane.
        Following => "following",
    }
}

sdl_enum! {
    /// Coarse position of an actor relative to the ego vehicle.
    Position, "position" {
        /// To the ego's left.
        Left => "left",
        /// To the ego's right.
        Right => "right",
        /// In front of the ego.
        Ahead => "ahead",
        /// Behind the ego.
        Behind => "behind",
    }
}

sdl_enum! {
    /// Road context of the scenario.
    RoadKind, "road kind" {
        /// A straight road segment.
        Straight => "straight",
        /// A leftward curve.
        CurveLeft => "curve-left",
        /// A rightward curve.
        CurveRight => "curve-right",
        /// A four-way intersection.
        Intersection => "intersection",
    }
}

/// One non-ego actor and its behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorClause {
    /// What kind of actor.
    pub kind: ActorKind,
    /// What it is doing relative to the ego vehicle.
    pub action: ActorAction,
    /// Where it is relative to the ego vehicle, when known.
    pub position: Option<Position>,
}

impl ActorClause {
    /// Creates a clause without position information.
    pub fn new(kind: ActorKind, action: ActorAction) -> Self {
        ActorClause { kind, action, position: None }
    }

    /// Creates a clause with a position.
    pub fn at(kind: ActorKind, action: ActorAction, position: Position) -> Self {
        ActorClause { kind, action, position: Some(position) }
    }
}

impl fmt::Display for ActorClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.action)?;
        if let Some(p) = self.position {
            write!(f, " {p}")?;
        }
        Ok(())
    }
}

/// A full scenario description: ego maneuver, actor clauses, road context.
///
/// # Examples
///
/// ```
/// use tsdx_sdl::{ActorAction, ActorClause, ActorKind, EgoManeuver, Position, RoadKind, Scenario};
///
/// let s = Scenario::new(EgoManeuver::DecelerateToStop, RoadKind::Intersection)
///     .with_actor(ActorClause::at(ActorKind::Pedestrian, ActorAction::Crossing, Position::Right));
/// assert_eq!(
///     s.to_string(),
///     "ego decelerate-to-stop; pedestrian crossing right; road intersection"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Ego maneuver clause.
    pub ego: EgoManeuver,
    /// Zero or more actor clauses, in salience order (most relevant first).
    pub actors: Vec<ActorClause>,
    /// Road context clause.
    pub road: RoadKind,
}

/// Maximum number of actor clauses in a valid scenario.
pub const MAX_ACTORS: usize = 4;

/// Error returned by [`Scenario::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateScenarioError {
    /// An actor kind/action combination outside the SDL event taxonomy.
    InvalidCombination(ActorKind, ActorAction),
    /// More actor clauses than [`MAX_ACTORS`].
    TooManyActors(usize),
}

impl fmt::Display for ValidateScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateScenarioError::InvalidCombination(k, a) => {
                write!(f, "invalid actor combination `{k} {a}`")
            }
            ValidateScenarioError::TooManyActors(n) => {
                write!(f, "too many actor clauses ({n} > {MAX_ACTORS})")
            }
        }
    }
}

impl std::error::Error for ValidateScenarioError {}

impl Scenario {
    /// Creates a scenario with no actor clauses.
    pub fn new(ego: EgoManeuver, road: RoadKind) -> Self {
        Scenario { ego, actors: Vec::new(), road }
    }

    /// Builder-style addition of an actor clause.
    #[must_use]
    pub fn with_actor(mut self, actor: ActorClause) -> Self {
        self.actors.push(actor);
        self
    }

    /// The most salient actor clause, if any.
    pub fn primary_actor(&self) -> Option<&ActorClause> {
        self.actors.first()
    }

    /// Checks taxonomy constraints (valid kind/action combos, actor limit).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ValidateScenarioError> {
        if self.actors.len() > MAX_ACTORS {
            return Err(ValidateScenarioError::TooManyActors(self.actors.len()));
        }
        for a in &self.actors {
            if !crate::vocab::is_valid_event(a.kind, a.action) {
                return Err(ValidateScenarioError::InvalidCombination(a.kind, a.action));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_roundtrip_through_index() {
        for m in EgoManeuver::ALL {
            assert_eq!(EgoManeuver::from_index(m.index()), *m);
        }
        for k in ActorKind::ALL {
            assert_eq!(ActorKind::from_index(k.index()), *k);
        }
        assert_eq!(EgoManeuver::COUNT, 7);
        assert_eq!(ActorKind::COUNT, 3);
        assert_eq!(ActorAction::COUNT, 7);
        assert_eq!(Position::COUNT, 4);
        assert_eq!(RoadKind::COUNT, 4);
    }

    #[test]
    fn enum_roundtrip_through_strings() {
        for a in ActorAction::ALL {
            assert_eq!(a.as_str().parse::<ActorAction>().unwrap(), *a);
        }
        for r in RoadKind::ALL {
            assert_eq!(r.as_str().parse::<RoadKind>().unwrap(), *r);
        }
        assert!("flying".parse::<ActorAction>().is_err());
    }

    #[test]
    fn display_forms_are_kebab_case() {
        assert_eq!(EgoManeuver::DecelerateToStop.to_string(), "decelerate-to-stop");
        assert_eq!(ActorAction::CutIn.to_string(), "cut-in");
        assert_eq!(RoadKind::CurveLeft.to_string(), "curve-left");
    }

    #[test]
    fn validate_rejects_bad_combo() {
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight)
            .with_actor(ActorClause::new(ActorKind::Pedestrian, ActorAction::Overtaking));
        assert!(matches!(
            s.validate(),
            Err(ValidateScenarioError::InvalidCombination(
                ActorKind::Pedestrian,
                ActorAction::Overtaking
            ))
        ));
    }

    #[test]
    fn validate_rejects_too_many_actors() {
        let mut s = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        for _ in 0..5 {
            s.actors.push(ActorClause::new(ActorKind::Vehicle, ActorAction::Leading));
        }
        assert!(matches!(s.validate(), Err(ValidateScenarioError::TooManyActors(5))));
    }

    #[test]
    fn validate_accepts_canonical_scenario() {
        let s = Scenario::new(EgoManeuver::TurnLeft, RoadKind::Intersection).with_actor(
            ActorClause::at(ActorKind::Vehicle, ActorAction::Oncoming, Position::Ahead),
        );
        assert!(s.validate().is_ok());
    }
}
