//! Total, deterministic top-k selection over `(id, score)` pairs.
//!
//! Similarity search must never panic on an adversarial score (`NaN` from a
//! poisoned embedding) and must return the same answer regardless of how
//! the scoring work was partitioned — across worker-pool sizes, shard
//! counts, or incremental inserts. Both properties come from ranking with a
//! *total* order: [`f32::total_cmp`] descending on the score, then the id
//! ascending as the tie-break. Under `total_cmp`, `+NaN` sorts above `+inf`
//! and `-NaN` below `-inf`, so poisoned entries surface deterministically
//! at the top instead of crashing the query (callers that embed through
//! [`crate::embed::embed`] never produce them; the order is a containment
//! guarantee, not an endorsement).
//!
//! Selection is O(n + k log k): [`slice::select_nth_unstable_by`] partitions
//! the k survivors in linear time and only they are sorted — the previous
//! full `sort_by` was O(n log n) for a k-sized answer and panicked on the
//! first non-finite comparison.

use std::cmp::Ordering;

/// The total order used by every similarity ranking in this crate: score
/// descending via [`f32::total_cmp`], ties broken by ascending id.
pub fn rank_order<I: Ord>(a: &(I, f32), b: &(I, f32)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

/// The `k` best-scored entries of `scored`, best first.
///
/// Total and deterministic for *any* input: non-finite scores are ordered
/// by [`f32::total_cmp`] (never a panic), and equal scores tie-break on the
/// ascending id, so the result is independent of the input permutation.
/// Returns all entries (sorted) when `k >= scored.len()`.
///
/// # Examples
///
/// ```
/// use tsdx_sdl::top_k;
///
/// let hits = top_k(vec![(0usize, 0.2), (1, 0.9), (2, 0.9), (3, f32::NAN)], 3);
/// // NaN sorts first (total order), then the tied 0.9s by ascending id.
/// assert_eq!(hits.len(), 3);
/// assert!(hits[0].1.is_nan());
/// assert_eq!((hits[1].0, hits[2].0), (1, 2));
/// ```
pub fn top_k<I: Ord + Copy>(mut scored: Vec<(I, f32)>, k: usize) -> Vec<(I, f32)> {
    if k == 0 {
        return Vec::new();
    }
    if k < scored.len() {
        scored.select_nth_unstable_by(k - 1, rank_order::<I>);
        scored.truncate(k);
    }
    scored.sort_unstable_by(rank_order::<I>);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_and_orders_the_best_k() {
        let scored = vec![(0u64, 0.1), (1, 0.7), (2, 0.4), (3, 0.9), (4, 0.2)];
        assert_eq!(top_k(scored, 3), vec![(3, 0.9), (1, 0.7), (2, 0.4)]);
    }

    #[test]
    fn k_zero_and_k_past_len_are_total() {
        assert_eq!(top_k(vec![(1u32, 0.5)], 0), vec![]);
        assert_eq!(top_k(Vec::<(u32, f32)>::new(), 5), vec![]);
        assert_eq!(top_k(vec![(2u32, 0.1), (1, 0.3)], 5), vec![(1, 0.3), (2, 0.1)]);
    }

    #[test]
    fn ties_break_on_ascending_id_regardless_of_input_order() {
        let a = top_k(vec![(5usize, 1.0), (2, 1.0), (9, 1.0)], 2);
        let b = top_k(vec![(9usize, 1.0), (5, 1.0), (2, 1.0)], 2);
        assert_eq!(a, vec![(2, 1.0), (5, 1.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn non_finite_scores_never_panic_and_order_totally() {
        let scored = vec![
            (0u64, f32::NAN),
            (1, f32::INFINITY),
            (2, 0.5),
            (3, f32::NEG_INFINITY),
            (4, -f32::NAN),
        ];
        let hits = top_k(scored, 5);
        assert!(hits[0].1.is_nan()); // +NaN above +inf under total_cmp
        assert_eq!(hits[1], (1, f32::INFINITY));
        assert_eq!(hits[2], (2, 0.5));
        assert_eq!(hits[3], (3, f32::NEG_INFINITY));
        assert!(hits[4].1.is_nan()); // -NaN below -inf
    }

    #[test]
    fn negative_zero_and_positive_zero_order_deterministically() {
        // total_cmp: -0.0 < +0.0, so +0.0 ranks first in descending order.
        let hits = top_k(vec![(0u32, -0.0), (1, 0.0)], 2);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 0);
    }
}
