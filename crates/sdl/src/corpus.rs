//! Scenario corpus: an in-memory index of SDL descriptions supporting
//! attribute filtering and similarity search.
//!
//! This is the downstream consumer of automated extraction: once every clip
//! in a fleet log has an SDL description, validation engineers query the
//! corpus — "all clips where a pedestrian crosses while the ego turns" —
//! or retrieve nearest neighbors of an interesting scenario.

use std::fmt;
use std::str::FromStr;

use crate::ast::{ActorAction, ActorKind, EgoManeuver, Position, RoadKind, Scenario};
use crate::embed::{dot, embed, is_unit_norm};
use crate::rank::top_k;

/// An attribute filter over scenarios (conjunctive; `None` = wildcard).
///
/// # Examples
///
/// ```
/// use tsdx_sdl::{ScenarioFilter, parse_scenario};
///
/// let filter: ScenarioFilter = "road=intersection actor=pedestrian".parse()?;
/// let s = parse_scenario("ego decelerate-to-stop; pedestrian crossing right; road intersection")?;
/// assert!(filter.matches(&s));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioFilter {
    /// Required ego maneuver.
    pub ego: Option<EgoManeuver>,
    /// Required road kind.
    pub road: Option<RoadKind>,
    /// Required actor kind (any clause).
    pub actor: Option<ActorKind>,
    /// Required actor action (any clause; combined with `actor` it must be
    /// the *same* clause).
    pub action: Option<ActorAction>,
    /// Required actor position (same clause as `actor`/`action` when set).
    pub position: Option<Position>,
}

/// Error from parsing a [`ScenarioFilter`] query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFilterError {
    token: String,
    reason: String,
}

impl fmt::Display for ParseFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter term `{}`: {}", self.token, self.reason)
    }
}

impl std::error::Error for ParseFilterError {}

impl ScenarioFilter {
    /// The match-everything filter.
    pub fn any() -> Self {
        ScenarioFilter::default()
    }

    /// Builder: require an ego maneuver.
    #[must_use]
    pub fn with_ego(mut self, ego: EgoManeuver) -> Self {
        self.ego = Some(ego);
        self
    }

    /// Builder: require a road kind.
    #[must_use]
    pub fn with_road(mut self, road: RoadKind) -> Self {
        self.road = Some(road);
        self
    }

    /// Builder: require an actor kind.
    #[must_use]
    pub fn with_actor(mut self, actor: ActorKind) -> Self {
        self.actor = Some(actor);
        self
    }

    /// Builder: require an actor action.
    #[must_use]
    pub fn with_action(mut self, action: ActorAction) -> Self {
        self.action = Some(action);
        self
    }

    /// Builder: require an actor position.
    #[must_use]
    pub fn with_position(mut self, position: Position) -> Self {
        self.position = Some(position);
        self
    }

    /// True when `scenario` satisfies every set constraint. Actor
    /// constraints must all hold on a *single* clause.
    pub fn matches(&self, scenario: &Scenario) -> bool {
        if let Some(e) = self.ego {
            if scenario.ego != e {
                return false;
            }
        }
        if let Some(r) = self.road {
            if scenario.road != r {
                return false;
            }
        }
        if self.actor.is_none() && self.action.is_none() && self.position.is_none() {
            return true;
        }
        scenario.actors.iter().any(|c| {
            self.actor.is_none_or(|k| c.kind == k)
                && self.action.is_none_or(|a| c.action == a)
                && self.position.is_none_or(|p| c.position == Some(p))
        })
    }
}

impl FromStr for ScenarioFilter {
    type Err = ParseFilterError;

    /// Parses a whitespace-separated list of `key=value` terms; keys are
    /// `ego`, `road`, `actor`, `action`, `position`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut filter = ScenarioFilter::default();
        for term in s.split_whitespace() {
            let (key, value) = term.split_once('=').ok_or_else(|| ParseFilterError {
                token: term.to_string(),
                reason: "expected key=value".to_string(),
            })?;
            let bad = |reason: String| ParseFilterError { token: term.to_string(), reason };
            match key {
                "ego" => filter.ego = Some(value.parse().map_err(|e| bad(format!("{e}")))?),
                "road" => filter.road = Some(value.parse().map_err(|e| bad(format!("{e}")))?),
                "actor" => filter.actor = Some(value.parse().map_err(|e| bad(format!("{e}")))?),
                "action" => filter.action = Some(value.parse().map_err(|e| bad(format!("{e}")))?),
                "position" => {
                    filter.position = Some(value.parse().map_err(|e| bad(format!("{e}")))?)
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        Ok(filter)
    }
}

impl fmt::Display for ScenarioFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut terms = Vec::new();
        if let Some(e) = self.ego {
            terms.push(format!("ego={e}"));
        }
        if let Some(r) = self.road {
            terms.push(format!("road={r}"));
        }
        if let Some(k) = self.actor {
            terms.push(format!("actor={k}"));
        }
        if let Some(a) = self.action {
            terms.push(format!("action={a}"));
        }
        if let Some(p) = self.position {
            terms.push(format!("position={p}"));
        }
        if terms.is_empty() {
            write!(f, "(any)")
        } else {
            write!(f, "{}", terms.join(" "))
        }
    }
}

/// An indexed collection of scenarios with precomputed embeddings.
///
/// # Examples
///
/// ```
/// use tsdx_sdl::{parse_scenario, ScenarioCorpus};
///
/// let mut corpus = ScenarioCorpus::new();
/// corpus.insert(parse_scenario("ego cruise; vehicle leading ahead; road straight")?);
/// corpus.insert(parse_scenario("ego turn-left; road intersection")?);
/// let query = parse_scenario("ego cruise; vehicle leading ahead; road curve-left")?;
/// let hits = corpus.query_similar(&query, 1);
/// assert_eq!(hits[0].0, 0); // the cruise scenario is the nearest neighbor
/// # Ok::<(), tsdx_sdl::ParseScenarioError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioCorpus {
    entries: Vec<Scenario>,
    embeddings: Vec<Vec<f32>>,
}

impl ScenarioCorpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        ScenarioCorpus::default()
    }

    /// Adds a scenario, returning its id (dense, insertion-ordered).
    pub fn insert(&mut self, scenario: Scenario) -> usize {
        self.embeddings.push(embed(&scenario));
        self.entries.push(scenario);
        self.entries.len() - 1
    }

    /// Number of indexed scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scenario with id `id`.
    pub fn get(&self, id: usize) -> Option<&Scenario> {
        self.entries.get(id)
    }

    /// Iterates over `(id, scenario)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Scenario)> {
        self.entries.iter().enumerate()
    }

    /// Ids of all scenarios matching `filter`, in insertion order.
    pub fn filter(&self, filter: &ScenarioFilter) -> Vec<usize> {
        self.iter().filter(|(_, s)| filter.matches(s)).map(|(i, _)| i).collect()
    }

    /// The `k` nearest scenarios to `query` by embedding cosine similarity,
    /// most similar first. Returns `(id, similarity)` pairs.
    ///
    /// Stored embeddings are unit-norm ([`embed`] guarantees it), so the
    /// similarity is a plain dot product, and ranking uses the total
    /// [`top_k`] order (score descending by `f32::total_cmp`, ascending-id
    /// tie-break): O(n + k log k), never a panic, deterministic for any
    /// input — including adversarial non-finite scores.
    pub fn query_similar(&self, query: &Scenario, k: usize) -> Vec<(usize, f32)> {
        let qe = embed(query);
        let scored: Vec<(usize, f32)> =
            self.embeddings.iter().enumerate().map(|(i, e)| (i, self.score(&qe, e))).collect();
        top_k(scored, k)
    }

    /// Combined query: filter first, then rank the survivors by similarity
    /// to `query`. Same ordering contract as [`Self::query_similar`].
    pub fn search(&self, filter: &ScenarioFilter, query: &Scenario, k: usize) -> Vec<(usize, f32)> {
        let qe = embed(query);
        let scored: Vec<(usize, f32)> = self
            .filter(filter)
            .into_iter()
            .map(|i| (i, self.score(&qe, &self.embeddings[i])))
            .collect();
        top_k(scored, k)
    }

    /// Similarity of a query embedding against one stored entry: the
    /// unit-norm dot-product fast path, with the invariant checked in
    /// debug builds.
    fn score(&self, query: &[f32], stored: &[f32]) -> f32 {
        debug_assert!(is_unit_norm(stored), "corpus embeddings must be unit-norm");
        dot(query, stored)
    }
}

impl FromIterator<Scenario> for ScenarioCorpus {
    fn from_iter<I: IntoIterator<Item = Scenario>>(iter: I) -> Self {
        let mut corpus = ScenarioCorpus::new();
        for s in iter {
            corpus.insert(s);
        }
        corpus
    }
}

impl Extend<Scenario> for ScenarioCorpus {
    fn extend<I: IntoIterator<Item = Scenario>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ActorClause;

    fn corpus() -> ScenarioCorpus {
        [
            "ego cruise; vehicle leading ahead; road straight",
            "ego decelerate-to-stop; pedestrian crossing right; road intersection",
            "ego turn-left; vehicle oncoming ahead; road intersection",
            "ego cruise; road curve-left",
            "ego lane-change-left; vehicle overtaking left; road straight",
        ]
        .iter()
        .map(|t| crate::parse_scenario(t).unwrap())
        .collect()
    }

    #[test]
    fn filter_matches_attributes_conjunctively() {
        let c = corpus();
        let f: ScenarioFilter = "road=intersection".parse().unwrap();
        assert_eq!(c.filter(&f), vec![1, 2]);
        let f: ScenarioFilter = "road=intersection actor=pedestrian".parse().unwrap();
        assert_eq!(c.filter(&f), vec![1]);
        let f: ScenarioFilter = "ego=cruise".parse().unwrap();
        assert_eq!(c.filter(&f), vec![0, 3]);
        assert_eq!(c.filter(&ScenarioFilter::any()).len(), 5);
    }

    #[test]
    fn actor_constraints_bind_to_a_single_clause() {
        // Scenario has a leading vehicle and a crossing pedestrian; a filter
        // for a *crossing vehicle* must not match across clauses.
        let s = Scenario::new(EgoManeuver::Cruise, RoadKind::Intersection)
            .with_actor(ActorClause::new(ActorKind::Vehicle, ActorAction::Leading))
            .with_actor(ActorClause::new(ActorKind::Pedestrian, ActorAction::Crossing));
        let f: ScenarioFilter = "actor=vehicle action=crossing".parse().unwrap();
        assert!(!f.matches(&s));
        let f: ScenarioFilter = "actor=pedestrian action=crossing".parse().unwrap();
        assert!(f.matches(&s));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!("bogus".parse::<ScenarioFilter>().is_err());
        assert!("ego=warp".parse::<ScenarioFilter>().is_err());
        assert!("color=red".parse::<ScenarioFilter>().is_err());
        let err = "ego".parse::<ScenarioFilter>().unwrap_err();
        assert!(err.to_string().contains("key=value"));
    }

    #[test]
    fn filter_display_roundtrips() {
        let f: ScenarioFilter = "ego=turn-left road=intersection actor=cyclist".parse().unwrap();
        let text = f.to_string();
        assert_eq!(text.parse::<ScenarioFilter>().unwrap(), f);
        assert_eq!(ScenarioFilter::any().to_string(), "(any)");
    }

    #[test]
    fn similarity_query_finds_self_first() {
        let c = corpus();
        for (i, s) in c.iter() {
            let hits = c.query_similar(s, 1);
            assert_eq!(hits[0].0, i, "self must be nearest for entry {i}");
            assert!((hits[0].1 - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn search_combines_filter_and_ranking() {
        let c = corpus();
        let f: ScenarioFilter = "road=intersection".parse().unwrap();
        let query = crate::parse_scenario("ego turn-left; road intersection").unwrap();
        let hits = c.search(&f, &query, 5);
        // Only the two intersection scenarios survive; the turn-left one wins.
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn builder_and_extend() {
        let f = ScenarioFilter::any()
            .with_ego(EgoManeuver::Cruise)
            .with_road(RoadKind::Straight)
            .with_actor(ActorKind::Vehicle)
            .with_action(ActorAction::Leading)
            .with_position(Position::Ahead);
        let mut c = ScenarioCorpus::new();
        c.extend(corpus().iter().map(|(_, s)| s.clone()));
        assert_eq!(c.len(), 5);
        assert_eq!(c.filter(&f), vec![0]);
        assert!(c.get(0).is_some());
        assert!(c.get(99).is_none());
    }
}
