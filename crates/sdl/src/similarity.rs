//! Scenario-to-scenario similarity.
//!
//! Two complementary measures are provided:
//!
//! * [`slot_similarity`] — interpretable weighted agreement of the ego,
//!   road, and actor slots (Jaccard over actor clauses);
//! * cosine similarity of [`crate::embed`] vectors, the Scenario2Vector
//!   approach used for retrieval.

use std::collections::BTreeSet;

use crate::ast::Scenario;

/// Weights of the three slot families in [`slot_similarity`].
///
/// Weights need not sum to one; they are normalized internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityWeights {
    /// Weight of ego-maneuver agreement.
    pub ego: f32,
    /// Weight of road-kind agreement.
    pub road: f32,
    /// Weight of actor-clause Jaccard overlap.
    pub actors: f32,
}

impl Default for SimilarityWeights {
    /// The weighting used throughout the evaluation: actors and ego dominate
    /// (they carry the safety-relevant content), road context breaks ties.
    fn default() -> Self {
        SimilarityWeights { ego: 0.4, road: 0.2, actors: 0.4 }
    }
}

/// Weighted slot agreement in `[0, 1]`; `1` iff the scenarios are
/// semantically identical up to actor ordering.
///
/// Actor clauses are compared as *sets* (order is salience only) with
/// Jaccard overlap; positions are part of clause identity. Two scenarios
/// with no actors at all count as full actor agreement.
pub fn slot_similarity(a: &Scenario, b: &Scenario, w: SimilarityWeights) -> f32 {
    let total = w.ego + w.road + w.actors;
    assert!(total > 0.0, "similarity weights must not all be zero");
    let ego = if a.ego == b.ego { 1.0 } else { 0.0 };
    let road = if a.road == b.road { 1.0 } else { 0.0 };

    let sa: BTreeSet<_> = a.actors.iter().copied().collect();
    let sb: BTreeSet<_> = b.actors.iter().copied().collect();
    let actors = if sa.is_empty() && sb.is_empty() {
        1.0
    } else {
        let inter = sa.intersection(&sb).count() as f32;
        let union = sa.union(&sb).count() as f32;
        inter / union
    };

    (w.ego * ego + w.road * road + w.actors * actors) / total
}

/// [`slot_similarity`] with [`SimilarityWeights::default`].
pub fn similarity(a: &Scenario, b: &Scenario) -> f32 {
    slot_similarity(a, b, SimilarityWeights::default())
}

/// Distance form of [`similarity`]: `1 - similarity`.
pub fn distance(a: &Scenario, b: &Scenario) -> f32 {
    1.0 - similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActorAction, ActorClause, ActorKind, EgoManeuver, Position, RoadKind};

    fn base() -> Scenario {
        Scenario::new(EgoManeuver::Cruise, RoadKind::Straight).with_actor(ActorClause::at(
            ActorKind::Vehicle,
            ActorAction::Leading,
            Position::Ahead,
        ))
    }

    #[test]
    fn identical_scenarios_have_similarity_one() {
        let s = base();
        assert!((similarity(&s, &s) - 1.0).abs() < 1e-6);
        assert!(distance(&s, &s).abs() < 1e-6);
    }

    #[test]
    fn actor_order_does_not_matter() {
        let a = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight)
            .with_actor(ActorClause::new(ActorKind::Vehicle, ActorAction::Leading))
            .with_actor(ActorClause::new(ActorKind::Cyclist, ActorAction::Oncoming));
        let mut b = a.clone();
        b.actors.reverse();
        assert!((similarity(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_scenarios_have_similarity_zero() {
        let a = base();
        let b = Scenario::new(EgoManeuver::TurnLeft, RoadKind::Intersection)
            .with_actor(ActorClause::new(ActorKind::Pedestrian, ActorAction::Crossing));
        assert!(similarity(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = base();
        let b = Scenario::new(EgoManeuver::Cruise, RoadKind::Intersection)
            .with_actor(ActorClause::new(ActorKind::Vehicle, ActorAction::Leading));
        let sab = similarity(&a, &b);
        let sba = similarity(&b, &a);
        assert!((sab - sba).abs() < 1e-7);
        assert!((0.0..=1.0).contains(&sab));
        // Shares ego; actor clause differs by position -> partial score.
        assert!(sab > 0.3 && sab < 1.0);
    }

    #[test]
    fn custom_weights_change_emphasis() {
        let a = base();
        let mut b = base();
        b.road = RoadKind::Intersection;
        let road_heavy =
            slot_similarity(&a, &b, SimilarityWeights { ego: 0.0, road: 1.0, actors: 0.0 });
        assert_eq!(road_heavy, 0.0);
        let actors_only =
            slot_similarity(&a, &b, SimilarityWeights { ego: 0.0, road: 0.0, actors: 1.0 });
        assert_eq!(actors_only, 1.0);
    }

    #[test]
    fn empty_actor_sets_agree() {
        let a = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        let b = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight);
        assert!((similarity(&a, &b) - 1.0).abs() < 1e-6);
    }
}
