//! Natural-language rendering of SDL scenarios.
//!
//! Produces the human-readable counterpart of the canonical machine form —
//! useful for reports, dataset browsers, and the CLI:
//!
//! ```text
//! ego decelerate-to-stop; pedestrian crossing right; road intersection
//!   ⇢ "The ego vehicle decelerates to a stop at an intersection while a
//!      pedestrian crosses from the right."
//! ```

use crate::ast::{ActorAction, ActorClause, ActorKind, EgoManeuver, Position, RoadKind, Scenario};

/// Renders a scenario as one English sentence.
///
/// # Examples
///
/// ```
/// use tsdx_sdl::{parse_scenario, to_sentence};
/// let s = parse_scenario("ego decelerate-to-stop; pedestrian crossing right; road intersection")?;
/// assert_eq!(
///     to_sentence(&s),
///     "The ego vehicle decelerates to a stop at an intersection while a pedestrian crosses from the right."
/// );
/// # Ok::<(), tsdx_sdl::ParseScenarioError>(())
/// ```
pub fn to_sentence(s: &Scenario) -> String {
    let mut out = String::from("The ego vehicle ");
    out.push_str(ego_phrase(s.ego));
    out.push(' ');
    out.push_str(road_phrase(s.road));

    for (i, actor) in s.actors.iter().enumerate() {
        out.push_str(if i == 0 { " while " } else { " and " });
        out.push_str(&actor_phrase(actor));
    }
    out.push('.');
    out
}

fn ego_phrase(ego: EgoManeuver) -> &'static str {
    match ego {
        EgoManeuver::Cruise => "cruises",
        EgoManeuver::DecelerateToStop => "decelerates to a stop",
        EgoManeuver::TurnLeft => "turns left",
        EgoManeuver::TurnRight => "turns right",
        EgoManeuver::LaneChangeLeft => "changes lanes to the left",
        EgoManeuver::LaneChangeRight => "changes lanes to the right",
        EgoManeuver::Accelerate => "accelerates",
    }
}

fn road_phrase(road: RoadKind) -> &'static str {
    match road {
        RoadKind::Straight => "on a straight road",
        RoadKind::CurveLeft => "through a left-hand curve",
        RoadKind::CurveRight => "through a right-hand curve",
        RoadKind::Intersection => "at an intersection",
    }
}

fn actor_noun(kind: ActorKind) -> &'static str {
    match kind {
        ActorKind::Vehicle => "a vehicle",
        ActorKind::Pedestrian => "a pedestrian",
        ActorKind::Cyclist => "a cyclist",
    }
}

fn actor_phrase(actor: &ActorClause) -> String {
    let noun = actor_noun(actor.kind);
    let verb = match actor.action {
        ActorAction::Crossing => "crosses",
        ActorAction::Oncoming => "approaches head-on",
        ActorAction::Leading => "drives ahead",
        ActorAction::CutIn => "cuts in",
        ActorAction::Overtaking => "overtakes",
        ActorAction::Stopped => "stands still",
        ActorAction::Following => "follows",
    };
    let place = actor.position.and_then(|p| match (actor.action, p) {
        (ActorAction::Crossing, Position::Left) => Some(" from the left"),
        (ActorAction::Crossing, Position::Right) => Some(" from the right"),
        // "drives ahead ahead" / "follows behind behind" read badly; the
        // verb already carries the direction.
        (ActorAction::Leading, Position::Ahead) | (ActorAction::Following, Position::Behind) => {
            None
        }
        (_, Position::Left) => Some(" on the left"),
        (_, Position::Right) => Some(" on the right"),
        (_, Position::Ahead) => Some(" ahead"),
        (_, Position::Behind) => Some(" behind"),
    });
    format!("{noun} {verb}{}", place.unwrap_or(""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    fn nl(text: &str) -> String {
        to_sentence(&parse_scenario(text).unwrap())
    }

    #[test]
    fn actorless_scenarios_read_naturally() {
        assert_eq!(nl("ego cruise; road straight"), "The ego vehicle cruises on a straight road.");
        assert_eq!(
            nl("ego turn-left; road intersection"),
            "The ego vehicle turns left at an intersection."
        );
        assert_eq!(
            nl("ego accelerate; road curve-right"),
            "The ego vehicle accelerates through a right-hand curve."
        );
    }

    #[test]
    fn single_actor_uses_while_and_avoids_duplication() {
        assert_eq!(
            nl("ego cruise; vehicle leading ahead; road straight"),
            "The ego vehicle cruises on a straight road while a vehicle drives ahead."
        );
        assert_eq!(
            nl("ego cruise; vehicle overtaking left; road straight"),
            "The ego vehicle cruises on a straight road while a vehicle overtakes on the left."
        );
    }

    #[test]
    fn crossing_positions_become_from_phrases() {
        assert_eq!(
            nl("ego decelerate-to-stop; pedestrian crossing right; road intersection"),
            "The ego vehicle decelerates to a stop at an intersection while a pedestrian crosses from the right."
        );
        assert_eq!(
            nl("ego cruise; cyclist crossing left; road intersection"),
            "The ego vehicle cruises at an intersection while a cyclist crosses from the left."
        );
    }

    #[test]
    fn multiple_actors_chain_with_and() {
        assert_eq!(
            nl("ego decelerate-to-stop; pedestrian crossing right; vehicle stopped ahead; road intersection"),
            "The ego vehicle decelerates to a stop at an intersection while a pedestrian crosses \
             from the right and a vehicle stands still ahead."
        );
    }

    #[test]
    fn every_vocabulary_item_renders() {
        // Exhaustively exercise the phrase tables; output must be non-empty
        // prose ending with a period.
        for &ego in EgoManeuver::ALL {
            for &road in RoadKind::ALL {
                let s = Scenario::new(ego, road);
                let text = to_sentence(&s);
                assert!(text.starts_with("The ego vehicle "));
                assert!(text.ends_with('.'));
            }
        }
        for &(kind, action) in crate::vocab::EVENT_CLASSES {
            for position in [None, Some(Position::Left), Some(Position::Ahead)] {
                let clause = ActorClause { kind, action, position };
                let phrase = actor_phrase(&clause);
                assert!(phrase.starts_with("a "), "{phrase}");
            }
        }
    }
}
