//! Property-based tests of [`tsdx_sdl::top_k`] and the corpus search paths.
//!
//! The bar: ranking never panics for any score pattern (including NaN and
//! zero vectors), the O(n + k log k) selection path returns exactly what a
//! full sort returns, and on finite inputs it is byte-for-byte the answer
//! the old stable full-sort implementation produced.

use proptest::prelude::*;
use tsdx_sdl::{
    parse_scenario, rank_order, top_k, vocab, ActorClause, EgoManeuver, Position, RoadKind,
    Scenario, ScenarioCorpus, ScenarioFilter,
};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let actor = ((0..vocab::EVENT_CLASSES.len()), 0..=Position::COUNT).prop_map(|(e, p)| {
        let (kind, action) = vocab::EVENT_CLASSES[e];
        let position = if p == Position::COUNT { None } else { Some(Position::from_index(p)) };
        ActorClause { kind, action, position }
    });
    (
        (0..EgoManeuver::COUNT).prop_map(EgoManeuver::from_index),
        (0..RoadKind::COUNT).prop_map(RoadKind::from_index),
        prop::collection::vec(actor, 0..=4),
    )
        .prop_map(|(ego, road, actors)| Scenario { ego, actors, road })
}

/// Any f32 bit pattern: finite, infinite, NaN, both zeros.
fn arb_score() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1.0f32..=1.0,
        Just(f32::NAN),
        Just(-f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(0.0f32),
        Just(-0.0f32),
    ]
}

/// Reference answer: sort *everything* with the total order, take `k`.
fn full_sort_reference(mut scored: Vec<(usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    scored.sort_by(rank_order::<usize>);
    scored.truncate(k);
    scored
}

/// The pre-fix ranking: stable full sort, descending `partial_cmp` on the
/// score. Only callable on finite scores — exactly the domain the old
/// `.expect("finite similarity")` path handled without panicking.
fn old_stable_sort(mut scored: Vec<(usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
    scored.truncate(k);
    scored
}

fn bits(hits: &[(usize, f32)]) -> Vec<(usize, u32)> {
    hits.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

proptest! {
    #[test]
    fn top_k_never_panics_and_matches_full_sort(
        scores in prop::collection::vec(arb_score(), 0..64),
        k in 0usize..70,
    ) {
        let scored: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        let got = top_k(scored.clone(), k);
        let want = full_sort_reference(scored, k);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn top_k_matches_old_path_on_finite_inputs(
        scores in prop::collection::vec(-1.0f32..=1.0, 1..64),
        k in 1usize..16,
    ) {
        // The old stable sort kept ascending insertion order on ties; the
        // new explicit ascending-id tie-break reproduces it bit-for-bit.
        let scored: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        let got = top_k(scored.clone(), k);
        let want = old_stable_sort(scored, k);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn top_k_is_permutation_invariant(
        scores in prop::collection::vec(arb_score(), 1..48),
        k in 1usize..8,
        rot in 0usize..48,
    ) {
        let scored: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        let mut rotated = scored.clone();
        let n = rotated.len();
        rotated.rotate_left(rot % n);
        prop_assert_eq!(bits(&top_k(scored, k)), bits(&top_k(rotated, k)));
    }

    #[test]
    fn corpus_query_never_panics_and_ranks_self_first(
        entries in prop::collection::vec(arb_scenario(), 1..24),
        k in 1usize..8,
    ) {
        let query = entries[0].clone();
        let corpus: ScenarioCorpus = entries.into_iter().collect();
        let hits = corpus.query_similar(&query, k);
        prop_assert_eq!(hits.len(), k.min(corpus.len()));
        // The query itself is in the corpus, so the best hit is exact.
        prop_assert!((hits[0].1 - 1.0).abs() < 1e-5);
        // Scores are non-increasing under the total order.
        for w in hits.windows(2) {
            prop_assert!(w[0].1.total_cmp(&w[1].1).is_ge());
        }
    }

    #[test]
    fn corpus_filtered_search_agrees_with_manual_ranking(
        entries in prop::collection::vec(arb_scenario(), 1..24),
        k in 1usize..8,
    ) {
        let query = entries[0].clone();
        let corpus: ScenarioCorpus = entries.into_iter().collect();
        let filter: ScenarioFilter = "road=intersection".parse().expect("valid filter");
        let hits = corpus.search(&filter, &query, k);
        let matching = corpus.filter(&filter);
        prop_assert_eq!(hits.len(), k.min(matching.len()));
        for &(id, _) in &hits {
            prop_assert!(matching.contains(&id));
        }
    }
}

#[test]
fn corpus_query_handles_duplicate_entries_deterministically() {
    let s = parse_scenario("ego cruise; road straight").expect("parse");
    let corpus: ScenarioCorpus = vec![s.clone(), s.clone(), s.clone()].into_iter().collect();
    let hits = corpus.query_similar(&s, 2);
    // All three score 1.0; the tie-break picks the lowest ids.
    assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1]);
}
