//! Property-based tests of the SDL grammar, similarity, and embeddings.

use proptest::prelude::*;
use tsdx_sdl::{
    embed, embedding_similarity, parse_scenario, similarity, vocab, ActorClause, ActorKind,
    EgoManeuver, Position, RoadKind, Scenario, EMBED_DIM,
};

fn arb_ego() -> impl Strategy<Value = EgoManeuver> {
    (0..EgoManeuver::COUNT).prop_map(EgoManeuver::from_index)
}

fn arb_road() -> impl Strategy<Value = RoadKind> {
    (0..RoadKind::COUNT).prop_map(RoadKind::from_index)
}

fn arb_position() -> impl Strategy<Value = Option<Position>> {
    prop_oneof![Just(None), (0..Position::COUNT).prop_map(|i| Some(Position::from_index(i))),]
}

/// Only taxonomy-valid (kind, action) pairs.
fn arb_actor() -> impl Strategy<Value = ActorClause> {
    ((0..vocab::EVENT_CLASSES.len()), arb_position()).prop_map(|(e, position)| {
        let (kind, action) = vocab::EVENT_CLASSES[e];
        ActorClause { kind, action, position }
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (arb_ego(), arb_road(), prop::collection::vec(arb_actor(), 0..=4))
        .prop_map(|(ego, road, actors)| Scenario { ego, actors, road })
}

proptest! {
    #[test]
    fn print_parse_roundtrip(s in arb_scenario()) {
        let text = s.to_string();
        let parsed = parse_scenario(&text).expect("canonical text must parse");
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn valid_scenarios_validate(s in arb_scenario()) {
        prop_assert!(s.validate().is_ok());
    }

    #[test]
    fn similarity_is_reflexive(s in arb_scenario()) {
        prop_assert!((similarity(&s, &s) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded(a in arb_scenario(), b in arb_scenario()) {
        let ab = similarity(&a, &b);
        let ba = similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
    }

    #[test]
    fn embeddings_are_unit_norm(s in arb_scenario()) {
        let e = embed(&s);
        prop_assert_eq!(e.len(), EMBED_DIM);
        let n: f32 = e.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((n - 1.0).abs() < 1e-4);
    }

    #[test]
    fn embedding_similarity_bounded_and_reflexive(a in arb_scenario(), b in arb_scenario()) {
        let sim = embedding_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&sim));
        prop_assert!((embedding_similarity(&a, &a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn identical_scenarios_maximize_embedding_similarity(a in arb_scenario(), b in arb_scenario()) {
        // No cross-pair can beat self-similarity.
        prop_assert!(embedding_similarity(&a, &b) <= embedding_similarity(&a, &a) + 1e-5);
    }

    #[test]
    fn actor_kind_strings_roundtrip(i in 0..ActorKind::COUNT) {
        let k = ActorKind::from_index(i);
        prop_assert_eq!(k.as_str().parse::<ActorKind>().unwrap(), k);
    }

    #[test]
    fn garbage_never_parses_as_scenario(junk in "[a-z ]{0,30}") {
        // Either it fails, or (vanishingly unlikely) it parses to something
        // that prints back to an equivalent canonical form.
        if let Ok(s) = parse_scenario(&junk) {
            prop_assert!(parse_scenario(&s.to_string()).is_ok());
        }
    }
}
