//! # tsdx-render
//!
//! Rasterizes [`tsdx_sim`] worlds into the pixel videos consumed by the
//! learned extractors: a pinhole ego camera with inverse ground-plane
//! projection, per-world rasterized road maps, actor billboards, sensor
//! noise — plus an orthographic bird's-eye view for inspection.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tsdx_render::{render_video, RenderConfig};
//! use tsdx_sim::{SamplerConfig, ScenarioSampler};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let generated = ScenarioSampler::new(SamplerConfig::default()).sample(&mut rng);
//! let trajectory = generated.world.simulate(0.1);
//! let video = render_video(&generated.world, &trajectory, &RenderConfig::default(), &mut rng);
//! assert_eq!(video.shape(), &[8, 32, 32]); // [T, H, W]
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bev;
mod camera;
mod raster;
mod video;
mod weather;
mod worldmap;

pub use bev::{render_bev, BevConfig};
pub use camera::Camera;
pub use raster::{actor_intensity, draw_traffic_light, render_frame};
pub use video::{render_video, RenderConfig};
pub use weather::{apply_weather, Weather};
pub use worldmap::{intensity, WorldMap};
