//! Weather and lighting conditions (robustness experiments).
//!
//! Weather is applied as a physically-motivated screen-space post-process:
//! fog blends pixels toward the air-light color with a transmittance that
//! decays exponentially in ground-plane depth; night dims the scene
//! globally and re-illuminates a headlight cone in front of the vehicle.

use crate::camera::Camera;

/// Atmospheric / lighting condition of a rendered clip.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Weather {
    /// Daylight, unlimited visibility.
    #[default]
    Clear,
    /// Homogeneous fog with the given extinction coefficient (1/m).
    /// Typical values: 0.02 (light haze) to 0.12 (dense fog).
    Fog(f32),
    /// Night driving: globally dimmed with a headlight cone.
    Night,
}

impl Weather {
    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            Weather::Clear => "clear".to_string(),
            Weather::Fog(k) => format!("fog({k:.2})"),
            Weather::Night => "night".to_string(),
        }
    }
}

/// Air-light (fog color) intensity.
const FOG_COLOR: f32 = 0.72;

/// Global night dimming factor.
const NIGHT_DIM: f32 = 0.30;

/// Extra illumination inside the headlight cone.
const HEADLIGHT_GAIN: f32 = 0.65;

/// Headlight reach (m) and half-width (m).
const HEADLIGHT_RANGE: f32 = 22.0;
const HEADLIGHT_HALF_WIDTH: f32 = 4.5;

/// Applies `weather` to a rendered frame in place (`frame` is `H*W`
/// row-major, `cam` provides the depth geometry).
pub fn apply_weather(weather: Weather, cam: &Camera, frame: &mut [f32]) {
    match weather {
        Weather::Clear => {}
        Weather::Fog(k) => {
            let k = k.max(0.0);
            for row in 0..cam.height {
                let depth = row_depth(cam, row);
                let transmittance = (-k * depth).exp();
                for col in 0..cam.width {
                    let v = &mut frame[row * cam.width + col];
                    *v = *v * transmittance + FOG_COLOR * (1.0 - transmittance);
                }
            }
        }
        Weather::Night => {
            for row in 0..cam.height {
                for col in 0..cam.width {
                    let v = &mut frame[row * cam.width + col];
                    let lit = headlight_factor(cam, row, col);
                    *v *= NIGHT_DIM + HEADLIGHT_GAIN * lit;
                }
            }
        }
    }
}

/// Representative scene depth for an image row: ground-plane depth below
/// the horizon, far-field above it.
fn row_depth(cam: &Camera, row: usize) -> f32 {
    match cam.unproject_ground(cam.width as f32 / 2.0, row as f32 + 0.5) {
        Some((fwd, _)) => fwd,
        None => cam.max_depth,
    }
}

/// How strongly the headlights illuminate a pixel (0..1).
fn headlight_factor(cam: &Camera, row: usize, col: usize) -> f32 {
    let Some((fwd, left)) = cam.unproject_ground(col as f32 + 0.5, row as f32 + 0.5) else {
        return 0.0; // sky stays dark at night
    };
    if fwd > HEADLIGHT_RANGE {
        return 0.0;
    }
    let lateral_fade = (1.0 - (left.abs() / HEADLIGHT_HALF_WIDTH)).clamp(0.0, 1.0);
    let range_fade = (1.0 - fwd / HEADLIGHT_RANGE).clamp(0.0, 1.0);
    lateral_fade * (0.3 + 0.7 * range_fade)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame(cam: &Camera) -> Vec<f32> {
        // Mid-gray everywhere.
        vec![0.4; cam.width * cam.height]
    }

    #[test]
    fn clear_is_identity() {
        let cam = Camera::standard(16, 16);
        let mut f = test_frame(&cam);
        let orig = f.clone();
        apply_weather(Weather::Clear, &cam, &mut f);
        assert_eq!(f, orig);
    }

    #[test]
    fn fog_pulls_distant_rows_toward_airlight() {
        let cam = Camera::standard(16, 16);
        let mut f = test_frame(&cam);
        apply_weather(Weather::Fog(0.08), &cam, &mut f);
        // Sky/far rows approach the fog color; near rows stay closer to 0.4.
        let far = f[0];
        let near = f[15 * 16];
        assert!(far > 0.6, "far row should be foggy: {far}");
        assert!(near < far, "near row should retain more contrast");
        assert!((0.4..0.73).contains(&near));
    }

    #[test]
    fn heavier_fog_reduces_contrast_more() {
        let cam = Camera::standard(16, 16);
        let mut light = test_frame(&cam);
        let mut dense = test_frame(&cam);
        // Make one pixel bright so contrast is measurable.
        light[14 * 16 + 8] = 1.0;
        dense[14 * 16 + 8] = 1.0;
        apply_weather(Weather::Fog(0.02), &cam, &mut light);
        apply_weather(Weather::Fog(0.12), &cam, &mut dense);
        let contrast = |f: &[f32]| f[14 * 16 + 8] - f[14 * 16];
        assert!(contrast(&dense) < contrast(&light));
    }

    #[test]
    fn night_dims_sky_but_lights_the_road_ahead() {
        let cam = Camera::standard(32, 32);
        let mut f = test_frame(&cam);
        apply_weather(Weather::Night, &cam, &mut f);
        let sky = f[16]; // top row
                         // Bottom center: close ground dead ahead = inside the cone.
        let road_ahead = f[31 * 32 + 16];
        assert!(sky < 0.15, "sky must be dark at night: {sky}");
        assert!(road_ahead > sky * 2.0, "headlights must lift the road: {road_ahead} vs {sky}");
        // Far edge of a low row (large |lateral|) is outside the cone.
        let roadside = f[20 * 32];
        assert!(roadside < road_ahead, "cone should be centered");
    }

    #[test]
    fn weather_names_are_stable() {
        assert_eq!(Weather::Clear.name(), "clear");
        assert_eq!(Weather::Fog(0.05).name(), "fog(0.05)");
        assert_eq!(Weather::Night.name(), "night");
        assert_eq!(Weather::default(), Weather::Clear);
    }
}
