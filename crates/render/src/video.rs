//! Clip rendering: trajectory → video tensor.

use rand::Rng;
use tsdx_sim::{Trajectory, World};
use tsdx_tensor::Tensor;

use crate::camera::Camera;
use crate::raster::{draw_traffic_light, render_frame};
use crate::weather::{apply_weather, Weather};
use crate::worldmap::WorldMap;

/// Rendering configuration for video clips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of frames sampled evenly over the clip.
    pub frames: usize,
    /// Standard deviation of additive Gaussian pixel noise (0 disables).
    pub noise_std: f32,
    /// Half-range of the per-clip global brightness jitter (0 disables).
    pub brightness_jitter: f32,
    /// Atmospheric / lighting condition.
    pub weather: Weather,
}

impl Default for RenderConfig {
    /// The evaluation default: 8 frames of 32×32 with mild sensor noise.
    fn default() -> Self {
        RenderConfig {
            width: 32,
            height: 32,
            frames: 8,
            noise_std: 0.01,
            brightness_jitter: 0.05,
            weather: Weather::Clear,
        }
    }
}

/// Renders a simulated world into a grayscale video tensor `[T, H, W]`.
///
/// Frames are sampled evenly over the trajectory (first and last step
/// included). Noise is sampled from `rng`, so clips are reproducible under
/// a seeded generator.
pub fn render_video(
    world: &World,
    traj: &Trajectory,
    cfg: &RenderConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let cam = Camera::standard(cfg.width, cfg.height);
    let map = WorldMap::build(&world.road);
    let indices = traj.frame_indices(cfg.frames);

    let brightness = if cfg.brightness_jitter > 0.0 {
        rng.random_range(-cfg.brightness_jitter..=cfg.brightness_jitter)
    } else {
        0.0
    };

    let mut data = Vec::with_capacity(cfg.frames * cfg.height * cfg.width);
    for &i in &indices {
        let ego = &traj.ego[i];
        let actors: Vec<_> =
            world.actors.iter().zip(&traj.actors).map(|(a, states)| (a.kind, states[i])).collect();
        let mut frame = render_frame(&cam, &map, ego, &actors);
        if let Some(light) = &world.light {
            draw_traffic_light(&cam, &ego.pose, light, traj.time_at(i), frame.data_mut());
        }
        apply_weather(cfg.weather, &cam, frame.data_mut());
        for &v in frame.data() {
            let noise =
                if cfg.noise_std > 0.0 { tsdx_nn_free_normal(rng) * cfg.noise_std } else { 0.0 };
            data.push((v + brightness + noise).clamp(0.0, 1.0));
        }
    }
    Tensor::from_vec(data, &[cfg.frames, cfg.height, cfg.width])
}

/// Box–Muller standard normal (local copy to avoid a dependency cycle with
/// `tsdx-nn`).
fn tsdx_nn_free_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_sim::{SamplerConfig, ScenarioSampler};

    fn sample_world() -> (World, Trajectory) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.1);
        (g.world, traj)
    }

    #[test]
    fn video_shape_and_range() {
        let (world, traj) = sample_world();
        let cfg = RenderConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let v = render_video(&world, &traj, &cfg, &mut rng);
        assert_eq!(v.shape(), &[8, 32, 32]);
        assert!(v.min() >= 0.0 && v.max() <= 1.0);
        assert!(!v.has_non_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let (world, traj) = sample_world();
        let cfg = RenderConfig::default();
        let a = render_video(&world, &traj, &cfg, &mut StdRng::seed_from_u64(5));
        let b = render_video(&world, &traj, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn noise_free_config_is_pure_function_of_world() {
        let (world, traj) = sample_world();
        let cfg =
            RenderConfig { noise_std: 0.0, brightness_jitter: 0.0, ..RenderConfig::default() };
        let a = render_video(&world, &traj, &cfg, &mut StdRng::seed_from_u64(1));
        let b = render_video(&world, &traj, &cfg, &mut StdRng::seed_from_u64(999));
        assert_eq!(a, b);
    }

    #[test]
    fn frames_change_over_time_when_ego_moves() {
        let (world, traj) = sample_world();
        let cfg =
            RenderConfig { noise_std: 0.0, brightness_jitter: 0.0, ..RenderConfig::default() };
        let v = render_video(&world, &traj, &cfg, &mut StdRng::seed_from_u64(0));
        let hw = 32 * 32;
        let first = &v.data()[..hw];
        let last = &v.data()[(cfg.frames - 1) * hw..];
        let diff: f32 = first.iter().zip(last).map(|(a, b)| (a - b).abs()).sum::<f32>() / hw as f32;
        assert!(diff > 0.005, "video is static: mean |diff| = {diff}");
    }

    #[test]
    fn custom_resolution_and_frame_count() {
        let (world, traj) = sample_world();
        let cfg = RenderConfig { width: 16, height: 24, frames: 4, ..RenderConfig::default() };
        let mut rng = StdRng::seed_from_u64(6);
        let v = render_video(&world, &traj, &cfg, &mut rng);
        assert_eq!(v.shape(), &[4, 24, 16]);
    }
}
