//! Ground-plane intensity map of a road layout.
//!
//! Rendering a frame inverse-projects every below-horizon pixel to a ground
//! point; sampling road geometry directly per pixel would be quadratic in
//! path length. Instead we rasterize the static road once per world into a
//! coarse grid — painting along each lane path — and bilinearly sample it.

use tsdx_sim::geometry::Vec2;
use tsdx_sim::RoadLayout;

/// Grayscale intensities of the static world.
pub mod intensity {
    /// Off-road terrain.
    pub const TERRAIN: f32 = 0.15;
    /// Paved road surface.
    pub const ROAD: f32 = 0.40;
    /// Painted lane marking.
    pub const MARKING: f32 = 0.90;
    /// Sky above the horizon.
    pub const SKY: f32 = 0.75;
}

/// A rasterized ground-plane intensity grid.
#[derive(Debug, Clone)]
pub struct WorldMap {
    origin: Vec2,
    cell: f32,
    cols: usize,
    rows: usize,
    data: Vec<f32>,
}

/// Painting step along paths (m).
const PAINT_STEP: f32 = 0.2;

/// Dash pattern period / duty for lane markings (m).
const DASH_PERIOD: f32 = 6.0;
const DASH_ON: f32 = 3.0;

impl WorldMap {
    /// Rasterizes `road` over the rectangle covering all its surfaces.
    pub fn build(road: &RoadLayout) -> Self {
        Self::build_with_cell(road, 0.25)
    }

    /// Like [`WorldMap::build`] with an explicit cell size (m).
    pub fn build_with_cell(road: &RoadLayout, cell: f32) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        // Bounding box over all surface centerlines, padded by road width
        // and a terrain margin.
        let mut min = Vec2::new(f32::INFINITY, f32::INFINITY);
        let mut max = Vec2::new(f32::NEG_INFINITY, f32::NEG_INFINITY);
        for lane in road.surfaces() {
            for p in lane.center.points() {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
            }
        }
        let margin = 12.0;
        min = min - Vec2::new(margin, margin);
        max = max + Vec2::new(margin, margin);
        let cols = ((max.x - min.x) / cell).ceil() as usize + 1;
        let rows = ((max.y - min.y) / cell).ceil() as usize + 1;
        let mut map =
            WorldMap { origin: min, cell, cols, rows, data: vec![intensity::TERRAIN; cols * rows] };

        // Paint road surfaces, then markings on top.
        for lane in road.surfaces() {
            map.paint_strip(&lane.center, lane.width, intensity::ROAD, None);
        }
        for marking in road.markings() {
            map.paint_strip(marking, 0.3, intensity::MARKING, Some((DASH_PERIOD, DASH_ON)));
        }
        map
    }

    /// Paints a strip of `width` around `path`, optionally dashed by arc
    /// length `(period, on)`.
    fn paint_strip(
        &mut self,
        path: &tsdx_sim::Path,
        width: f32,
        value: f32,
        dash: Option<(f32, f32)>,
    ) {
        let half = width / 2.0;
        let mut s = 0.0;
        let len = path.length();
        while s <= len {
            if let Some((period, on)) = dash {
                if s % period >= on {
                    s += PAINT_STEP;
                    continue;
                }
            }
            let pose = path.pose_at(s);
            let left = pose.forward().perp();
            let mut off = -half;
            while off <= half {
                self.splat(pose.position + left * off, value);
                off += self.cell * 0.75;
            }
            s += PAINT_STEP;
        }
    }

    fn splat(&mut self, p: Vec2, value: f32) {
        let c = ((p.x - self.origin.x) / self.cell).round() as isize;
        let r = ((p.y - self.origin.y) / self.cell).round() as isize;
        if c >= 0 && (c as usize) < self.cols && r >= 0 && (r as usize) < self.rows {
            self.data[r as usize * self.cols + c as usize] = value;
        }
    }

    /// Bilinearly samples the map at a world point (terrain outside bounds).
    pub fn sample(&self, p: Vec2) -> f32 {
        let fx = (p.x - self.origin.x) / self.cell;
        let fy = (p.y - self.origin.y) / self.cell;
        if fx < 0.0 || fy < 0.0 {
            return intensity::TERRAIN;
        }
        let (x0, y0) = (fx.floor() as usize, fy.floor() as usize);
        if x0 + 1 >= self.cols || y0 + 1 >= self.rows {
            return intensity::TERRAIN;
        }
        let (tx, ty) = (fx - x0 as f32, fy - y0 as f32);
        let at = |x: usize, y: usize| self.data[y * self.cols + x];
        let top = at(x0, y0) * (1.0 - tx) + at(x0 + 1, y0) * tx;
        let bot = at(x0, y0 + 1) * (1.0 - tx) + at(x0 + 1, y0 + 1) * tx;
        top * (1.0 - ty) + bot * ty
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Cell size in meters.
    pub fn cell(&self) -> f32 {
        self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_sdl::RoadKind;
    use tsdx_sim::LANE_WIDTH;

    #[test]
    fn road_cells_brighter_than_terrain() {
        let road = RoadLayout::build(RoadKind::Straight);
        let map = WorldMap::build(&road);
        // Ego lane center is road; far off-road is terrain.
        let on_road = map.sample(Vec2::new(LANE_WIDTH + LANE_WIDTH / 2.0, 0.0));
        let off_road = map.sample(Vec2::new(40.0, 0.0));
        assert!(on_road > 0.3, "expected road intensity, got {on_road}");
        assert!(off_road < 0.2, "expected terrain intensity, got {off_road}");
    }

    #[test]
    fn markings_are_brightest_where_dashed_on() {
        let road = RoadLayout::build(RoadKind::Straight);
        let map = WorldMap::build(&road);
        // Scan along the center marking: some cells must be bright.
        let bright =
            (0..200).map(|i| map.sample(Vec2::new(0.0, -80.0 + i as f32))).fold(0.0f32, f32::max);
        assert!(bright > 0.7, "no marking found along centerline: {bright}");
    }

    #[test]
    fn intersection_has_road_on_both_axes() {
        let road = RoadLayout::build(RoadKind::Intersection);
        let map = WorldMap::build(&road);
        assert!(map.sample(Vec2::new(1.75, -30.0)) > 0.3, "NS road");
        assert!(map.sample(Vec2::new(-30.0, -1.75)) > 0.3, "EW road");
        assert!(map.sample(Vec2::new(-30.0, -30.0)) < 0.2, "corner terrain");
    }

    #[test]
    fn curve_road_follows_the_bend() {
        let road = RoadLayout::build(RoadKind::CurveLeft);
        let map = WorldMap::build(&road);
        let lane = road.ego_lane();
        // Sample along the lane: everything should be painted road.
        for i in 0..20 {
            let s = lane.length() * i as f32 / 19.0;
            let p = lane.pose_at(s).position;
            let v = map.sample(p);
            assert!(v > 0.3, "gap in curve paint at s={s}: {v}");
        }
    }

    #[test]
    fn out_of_bounds_is_terrain() {
        let road = RoadLayout::build(RoadKind::Straight);
        let map = WorldMap::build(&road);
        assert_eq!(map.sample(Vec2::new(1e5, 1e5)), intensity::TERRAIN);
        assert_eq!(map.sample(Vec2::new(-1e5, 0.0)), intensity::TERRAIN);
    }
}
