//! Frame rasterization: ground plane plus actor billboards.

use tsdx_sdl::ActorKind;
use tsdx_sim::geometry::Pose;
use tsdx_sim::{body_size, ActorState, EgoState};
use tsdx_tensor::Tensor;

use crate::camera::Camera;
use crate::worldmap::{intensity, WorldMap};

/// Grayscale intensity of each actor kind (contrasting with road 0.40 and
/// markings 0.90).
pub fn actor_intensity(kind: ActorKind) -> f32 {
    match kind {
        ActorKind::Vehicle => 0.68,
        ActorKind::Cyclist => 0.55,
        ActorKind::Pedestrian => 1.0,
    }
}

/// Renders one grayscale frame (`[H, W]`, values in `[0, 1]`).
///
/// Ground and sky come from inverse projection into the [`WorldMap`];
/// actors are painted back-to-front as upright billboards whose apparent
/// width accounts for their orientation relative to the view ray.
pub fn render_frame(
    cam: &Camera,
    map: &WorldMap,
    ego: &EgoState,
    actors: &[(ActorKind, ActorState)],
) -> Tensor {
    let (w, h) = (cam.width, cam.height);
    let mut img = vec![0.0f32; w * h];

    // Ground + sky.
    for row in 0..h {
        for col in 0..w {
            let v = match cam.unproject_ground(col as f32 + 0.5, row as f32 + 0.5) {
                Some((fwd, left)) => {
                    let world = ego.pose.local_to_world(tsdx_sim::geometry::Vec2::new(fwd, left));
                    map.sample(world)
                }
                None => {
                    // Fade the sky slightly toward the horizon.
                    let t = row as f32 / cam.horizon_row.max(1.0);
                    intensity::SKY - 0.08 * t
                }
            };
            img[row * w + col] = v;
        }
    }

    // Painter's algorithm: farthest actors first.
    let mut order: Vec<usize> = (0..actors.len()).collect();
    let depth = |a: &ActorState| ego.pose.world_to_local(a.pose.position).x;
    order.sort_by(|&i, &j| {
        depth(&actors[j].1).partial_cmp(&depth(&actors[i].1)).expect("finite depths")
    });

    for i in order {
        let (kind, state) = &actors[i];
        if !state.active {
            continue;
        }
        draw_actor(cam, &ego.pose, *kind, state, &mut img);
    }

    Tensor::from_vec(img, &[h, w])
}

/// Paints a traffic light: a dark pole silhouetted against the sky with a
/// dark lamp housing whose height encodes the phase (top = red, bottom =
/// green). Grayscale-friendly: the only other above-horizon content is sky.
pub fn draw_traffic_light(
    cam: &Camera,
    ego: &Pose,
    light: &tsdx_sim::TrafficLight,
    time: f32,
    img: &mut [f32],
) {
    const POLE_SHADE: f32 = 0.22;
    const LAMP_SHADE: f32 = 0.05;
    let local = ego.world_to_local(light.position);
    let (fwd, left) = (local.x, local.y);
    if fwd < 1.5 || fwd > cam.max_depth {
        return;
    }
    let (w, h) = (cam.width as isize, cam.height as isize);
    // Pole: a thin vertical stripe from the ground to the head.
    let Some((col, r_base)) = cam.project_local(fwd, left, 0.0) else { return };
    let Some((_, r_top)) = cam.project_local(fwd, left, light.pole_height + 0.4) else { return };
    let half_w = (cam.focal_px * 0.08 / fwd).max(0.5);
    for r in (r_top.floor() as isize).max(0)..(r_base.ceil() as isize).min(h) {
        for c in ((col - half_w).floor() as isize).max(0)..((col + half_w).ceil() as isize).min(w) {
            img[(r * w + c) as usize] = POLE_SHADE;
        }
    }
    // Lamp: a darker square at the phase-dependent height.
    let lamp_h = light.lamp_height_at(time);
    let Some((_, r_lamp)) = cam.project_local(fwd, left, lamp_h) else { return };
    let lamp_half = (cam.focal_px * 0.25 / fwd).max(1.0);
    for r in ((r_lamp - lamp_half).floor() as isize).max(0)
        ..((r_lamp + lamp_half).ceil() as isize).min(h)
    {
        for c in
            ((col - lamp_half).floor() as isize).max(0)..((col + lamp_half).ceil() as isize).min(w)
        {
            img[(r * w + c) as usize] = LAMP_SHADE;
        }
    }
}

fn draw_actor(cam: &Camera, ego: &Pose, kind: ActorKind, state: &ActorState, img: &mut [f32]) {
    let size = body_size(kind);
    let local = ego.world_to_local(state.pose.position);
    let (fwd, left) = (local.x, local.y);
    if fwd < 1.0 || fwd > cam.max_depth {
        return;
    }
    // Apparent width: projection of the oriented footprint onto the image
    // plane (perpendicular to the view direction, approximated by the ego
    // lateral axis).
    let rel_heading = state.pose.heading - ego.heading;
    let apparent_w = (rel_heading.cos().abs() * size.width + rel_heading.sin().abs() * size.length)
        .max(size.width);

    let Some((c0, r_foot)) = cam.project_local(fwd, left, 0.0) else { return };
    let Some((_, r_head)) = cam.project_local(fwd, left, size.height) else { return };
    let half_w_px = cam.focal_px * (apparent_w / 2.0) / fwd;

    let (w, h) = (cam.width as isize, cam.height as isize);
    let col_lo = (c0 - half_w_px).floor() as isize;
    let col_hi = (c0 + half_w_px).ceil() as isize;
    let row_lo = r_head.floor() as isize;
    let row_hi = r_foot.ceil() as isize;
    let shade = actor_intensity(kind);
    // Simple depth shading so distant actors blend a little.
    let fade = (1.0 - fwd / (cam.max_depth * 4.0)).clamp(0.85, 1.0);
    for r in row_lo.max(0)..row_hi.min(h) {
        for c in col_lo.max(0)..col_hi.min(w) {
            img[(r * w + c) as usize] = shade * fade;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;
    use tsdx_sdl::RoadKind;
    use tsdx_sim::geometry::Vec2;
    use tsdx_sim::RoadLayout;

    fn setup() -> (Camera, WorldMap, EgoState) {
        let road = RoadLayout::build(RoadKind::Straight);
        let map = WorldMap::build(&road);
        let ego =
            EgoState { pose: Pose::new(Vec2::new(5.25, -20.0), FRAC_PI_2), speed: 8.0, s: 60.0 };
        (Camera::standard(32, 32), map, ego)
    }

    #[test]
    fn frame_shape_and_range() {
        let (cam, map, ego) = setup();
        let f = render_frame(&cam, &map, &ego, &[]);
        assert_eq!(f.shape(), &[32, 32]);
        assert!(f.min() >= 0.0 && f.max() <= 1.0);
    }

    #[test]
    fn sky_above_horizon_road_below() {
        let (cam, map, ego) = setup();
        let f = render_frame(&cam, &map, &ego, &[]);
        // Top row is sky-ish bright; bottom center is road gray.
        assert!(f.at(&[0, 16]) > 0.6);
        let road_px = f.at(&[30, 16]);
        assert!((road_px - intensity::ROAD).abs() < 0.15, "bottom center {road_px}");
    }

    #[test]
    fn vehicle_ahead_appears_and_scales_with_distance() {
        let (cam, map, ego) = setup();
        let mk = |dist: f32| ActorState {
            pose: Pose::new(Vec2::new(5.25, -20.0 + dist), FRAC_PI_2),
            speed: 0.0,
            s: 0.0,
            active: true,
        };
        let near = render_frame(&cam, &map, &ego, &[(ActorKind::Vehicle, mk(8.0))]);
        let far = render_frame(&cam, &map, &ego, &[(ActorKind::Vehicle, mk(40.0))]);
        let count = |t: &Tensor| {
            // Only scan below the horizon so sky shades don't alias with
            // the vehicle intensity.
            let mut n = 0;
            for r in 14..32 {
                for c in 0..32 {
                    if (t.at(&[r, c]) - 0.65).abs() < 0.06 {
                        n += 1;
                    }
                }
            }
            n
        };
        let (cn, cf) = (count(&near), count(&far));
        assert!(cn > 0, "near vehicle invisible");
        assert!(cf > 0, "far vehicle invisible");
        assert!(cn > cf * 2, "near vehicle should cover more pixels: {cn} vs {cf}");
    }

    #[test]
    fn inactive_actors_are_not_drawn() {
        let (cam, map, ego) = setup();
        let ghost = ActorState {
            pose: Pose::new(Vec2::new(5.25, -10.0), FRAC_PI_2),
            speed: 0.0,
            s: 0.0,
            active: false,
        };
        let with = render_frame(&cam, &map, &ego, &[(ActorKind::Vehicle, ghost)]);
        let without = render_frame(&cam, &map, &ego, &[]);
        assert!(with.allclose(&without, 1e-6));
    }

    #[test]
    fn left_actor_draws_left_of_center() {
        let (cam, map, ego) = setup();
        let left_actor = ActorState {
            // 4 m west of ego lane, 12 m ahead.
            pose: Pose::new(Vec2::new(1.25, -8.0), FRAC_PI_2),
            speed: 0.0,
            s: 0.0,
            active: true,
        };
        let f = render_frame(&cam, &map, &ego, &[(ActorKind::Vehicle, left_actor)]);
        // Sum vehicle-intensity pixels per half.
        let mut left_count = 0;
        let mut right_count = 0;
        for r in 0..32 {
            for c in 0..32 {
                if (f.at(&[r, c]) - 0.68).abs() < 0.1 {
                    if c < 16 {
                        left_count += 1;
                    } else {
                        right_count += 1;
                    }
                }
            }
        }
        assert!(left_count > right_count, "left actor rendered on wrong side");
    }

    #[test]
    fn pedestrian_is_tall_and_narrow() {
        let (cam, map, ego) = setup();
        let ped = ActorState {
            pose: Pose::new(Vec2::new(5.25, -10.0), 0.0),
            speed: 0.0,
            s: 0.0,
            active: true,
        };
        let f = render_frame(&cam, &map, &ego, &[(ActorKind::Pedestrian, ped)]);
        // Bounding box of pedestrian pixels.
        let (mut rmin, mut rmax, mut cmin, mut cmax) = (usize::MAX, 0, usize::MAX, 0);
        for r in 0..32 {
            for c in 0..32 {
                if (f.at(&[r, c]) - 1.0 * 0.9).abs() < 0.12 || f.at(&[r, c]) > 0.93 {
                    rmin = rmin.min(r);
                    rmax = rmax.max(r);
                    cmin = cmin.min(c);
                    cmax = cmax.max(c);
                }
            }
        }
        assert!(rmax > rmin, "pedestrian not visible");
        assert!(rmax - rmin >= cmax - cmin, "pedestrian should be at least as tall as wide");
    }
}
