//! Bird's-eye-view (BEV) rendering: an orthographic, ego-centered top view.
//!
//! The BEV modality is used by the `bev_explorer` example and by debugging
//! tools; the learned models consume the ego-camera view from
//! [`crate::render_video`].

use tsdx_sdl::ActorKind;
use tsdx_sim::geometry::Vec2;
use tsdx_sim::{body_size, ActorState, EgoState};
use tsdx_tensor::Tensor;

use crate::raster::actor_intensity;
use crate::worldmap::WorldMap;

/// BEV rendering configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BevConfig {
    /// Output image side length in pixels (square).
    pub size: usize,
    /// Meters covered by the view's side length.
    pub span: f32,
}

impl Default for BevConfig {
    fn default() -> Self {
        BevConfig { size: 64, span: 60.0 }
    }
}

/// Renders an ego-centered, north-up BEV frame (`[size, size]`).
///
/// The ego vehicle sits at the image center and is drawn at intensity 1.0;
/// other actors use their camera-view intensities.
pub fn render_bev(
    cfg: &BevConfig,
    map: &WorldMap,
    ego: &EgoState,
    actors: &[(ActorKind, ActorState)],
) -> Tensor {
    let n = cfg.size;
    let m_per_px = cfg.span / n as f32;
    let center = ego.pose.position;
    let half = cfg.span / 2.0;
    let mut img = vec![0.0f32; n * n];
    for row in 0..n {
        for col in 0..n {
            // Row 0 is north.
            let world = Vec2::new(
                center.x - half + (col as f32 + 0.5) * m_per_px,
                center.y + half - (row as f32 + 0.5) * m_per_px,
            );
            img[row * n + col] = map.sample(world);
        }
    }

    let mut paint_box = |pos: Vec2, heading: f32, length: f32, width: f32, value: f32| {
        // Paint the oriented rectangle by sampling its footprint.
        let steps_l = (length / m_per_px).ceil() as i32 + 1;
        let steps_w = (width / m_per_px).ceil() as i32 + 1;
        let fwd = Vec2::from_heading(heading);
        let left = fwd.perp();
        for i in 0..=steps_l {
            let fl = -length / 2.0 + length * i as f32 / steps_l as f32;
            for j in 0..=steps_w {
                let fw = -width / 2.0 + width * j as f32 / steps_w as f32;
                let p = pos + fwd * fl + left * fw;
                let col = ((p.x - (center.x - half)) / m_per_px) as isize;
                let row = (((center.y + half) - p.y) / m_per_px) as isize;
                if col >= 0 && (col as usize) < n && row >= 0 && (row as usize) < n {
                    img[row as usize * n + col as usize] = value;
                }
            }
        }
    };

    for (kind, state) in actors {
        if !state.active {
            continue;
        }
        let size = body_size(*kind);
        paint_box(
            state.pose.position,
            state.pose.heading,
            size.length,
            size.width,
            actor_intensity(*kind),
        );
    }
    // Ego last, always on top.
    paint_box(ego.pose.position, ego.pose.heading, 4.5, 1.8, 1.0);

    Tensor::from_vec(img, &[n, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;
    use tsdx_sdl::RoadKind;
    use tsdx_sim::geometry::Pose;
    use tsdx_sim::RoadLayout;

    fn setup() -> (WorldMap, EgoState) {
        let road = RoadLayout::build(RoadKind::Straight);
        let map = WorldMap::build(&road);
        let ego =
            EgoState { pose: Pose::new(Vec2::new(5.25, 0.0), FRAC_PI_2), speed: 8.0, s: 80.0 };
        (map, ego)
    }

    #[test]
    fn ego_is_at_center() {
        let (map, ego) = setup();
        let cfg = BevConfig::default();
        let img = render_bev(&cfg, &map, &ego, &[]);
        assert_eq!(img.shape(), &[64, 64]);
        // Center pixel belongs to the ego box (intensity 1.0).
        assert!(img.at(&[32, 32]) > 0.95);
    }

    #[test]
    fn road_runs_vertically_for_northbound_ego() {
        let (map, ego) = setup();
        let cfg = BevConfig::default();
        let img = render_bev(&cfg, &map, &ego, &[]);
        // A column through the ego should be mostly road; the far east
        // column mostly terrain.
        let col_mean = |c: usize| (0..64).map(|r| img.at(&[r, c])).sum::<f32>() / 64.0;
        assert!(col_mean(30) > 0.3);
        assert!(col_mean(63) < 0.25);
    }

    #[test]
    fn actor_north_of_ego_renders_in_top_half() {
        let (map, ego) = setup();
        let cfg = BevConfig::default();
        let actor = ActorState {
            pose: Pose::new(Vec2::new(5.25, 20.0), FRAC_PI_2),
            speed: 0.0,
            s: 0.0,
            active: true,
        };
        let img = render_bev(&cfg, &map, &ego, &[(ActorKind::Vehicle, actor)]);
        let mut found_row = None;
        for r in 0..64 {
            for c in 0..64 {
                if (img.at(&[r, c]) - 0.68).abs() < 0.05 {
                    found_row = Some(r);
                    break;
                }
            }
            if found_row.is_some() {
                break;
            }
        }
        let r = found_row.expect("vehicle visible in BEV");
        assert!(r < 32, "north actor must be in the top half, found at row {r}");
    }
}
