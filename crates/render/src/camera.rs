//! Pinhole ego-camera model.

use tsdx_sim::geometry::{Pose, Vec2};

/// A forward-facing pinhole camera mounted on the ego vehicle.
///
/// The camera sits `height` meters above the ground at the ego pose, with
/// its optical axis horizontal along the ego heading. Image coordinates are
/// `(col, row)` with the origin at the top-left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Focal length in pixels.
    pub focal_px: f32,
    /// Camera height above ground (m).
    pub cam_height: f32,
    /// Horizon row (principal point row), in pixels.
    pub horizon_row: f32,
    /// Far clipping distance for ground rendering (m).
    pub max_depth: f32,
}

impl Camera {
    /// A camera with a ~90° horizontal field of view for a `width`×`height`
    /// image, horizon slightly above center.
    pub fn standard(width: usize, height: usize) -> Self {
        Camera {
            width,
            height,
            focal_px: width as f32 / 2.0,
            cam_height: 1.4,
            horizon_row: height as f32 * 0.42,
            max_depth: 70.0,
        }
    }

    /// Projects a point in the *camera frame* — `forward` meters ahead,
    /// `left` meters to the left, `up` meters above ground — to pixel
    /// coordinates. Returns `None` behind the camera or beyond `max_depth`.
    pub fn project_local(&self, forward: f32, left: f32, up: f32) -> Option<(f32, f32)> {
        if forward < 0.5 || forward > self.max_depth {
            return None;
        }
        let cx = self.width as f32 / 2.0;
        let col = cx + self.focal_px * (-left) / forward;
        let row = self.horizon_row + self.focal_px * (self.cam_height - up) / forward;
        Some((col, row))
    }

    /// Inverse ground projection: pixel `(col, row)` to camera-frame ground
    /// coordinates `(forward, left)`. Returns `None` at or above the
    /// horizon, or beyond `max_depth`.
    pub fn unproject_ground(&self, col: f32, row: f32) -> Option<(f32, f32)> {
        let dy = row - self.horizon_row;
        if dy <= 0.5 {
            return None;
        }
        let forward = self.focal_px * self.cam_height / dy;
        if forward > self.max_depth {
            return None;
        }
        let cx = self.width as f32 / 2.0;
        let left = -(col - cx) * forward / self.focal_px;
        Some((forward, left))
    }

    /// Transforms a world point to the camera frame of `ego` (forward,
    /// left) on the ground plane.
    pub fn world_to_cam(&self, ego: &Pose, p: Vec2) -> (f32, f32) {
        let local = ego.world_to_local(p);
        (local.x, local.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_ahead_projects_to_center_column() {
        let cam = Camera::standard(32, 32);
        let (col, row) = cam.project_local(10.0, 0.0, 0.0).unwrap();
        assert!((col - 16.0).abs() < 1e-4);
        assert!(row > cam.horizon_row, "ground points sit below the horizon");
    }

    #[test]
    fn closer_ground_points_are_lower_and_bigger() {
        let cam = Camera::standard(32, 32);
        let (_, near) = cam.project_local(5.0, 0.0, 0.0).unwrap();
        let (_, far) = cam.project_local(40.0, 0.0, 0.0).unwrap();
        assert!(near > far, "nearer ground should be lower in the image");
    }

    #[test]
    fn left_points_project_left_of_center() {
        let cam = Camera::standard(32, 32);
        let (col, _) = cam.project_local(10.0, 3.0, 0.0).unwrap();
        assert!(col < 16.0, "left in world should be left in image, col={col}");
    }

    #[test]
    fn behind_and_beyond_clip() {
        let cam = Camera::standard(32, 32);
        assert!(cam.project_local(-5.0, 0.0, 0.0).is_none());
        assert!(cam.project_local(500.0, 0.0, 0.0).is_none());
    }

    #[test]
    fn ground_projection_roundtrips() {
        let cam = Camera::standard(64, 64);
        for &(f, l) in &[(5.0f32, 0.0f32), (12.0, 3.0), (30.0, -6.0)] {
            let (col, row) = cam.project_local(f, l, 0.0).unwrap();
            let (f2, l2) = cam.unproject_ground(col, row).unwrap();
            assert!((f - f2).abs() < 1e-3, "forward {f} vs {f2}");
            assert!((l - l2).abs() < 1e-3, "left {l} vs {l2}");
        }
    }

    #[test]
    fn sky_pixels_unproject_to_none() {
        let cam = Camera::standard(32, 32);
        assert!(cam.unproject_ground(16.0, 0.0).is_none());
        assert!(cam.unproject_ground(16.0, cam.horizon_row).is_none());
    }

    #[test]
    fn taller_points_project_higher() {
        let cam = Camera::standard(32, 32);
        let (_, foot) = cam.project_local(10.0, 0.0, 0.0).unwrap();
        let (_, head) = cam.project_local(10.0, 0.0, 1.7).unwrap();
        assert!(head < foot, "top of an object must be above its foot");
    }
}
