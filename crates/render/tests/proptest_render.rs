//! Property-based tests of renderer invariants over random scenarios.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_render::{apply_weather, render_video, Camera, RenderConfig, Weather};
use tsdx_sim::{SamplerConfig, ScenarioSampler};

fn small_cfg() -> RenderConfig {
    RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rendered_videos_are_bounded_and_finite(seed in 0u64..5_000) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.1);
        let v = render_video(&g.world, &traj, &small_cfg(), &mut rng);
        prop_assert_eq!(v.shape(), &[4, 16, 16]);
        prop_assert!(!v.has_non_finite());
        prop_assert!(v.min() >= 0.0 && v.max() <= 1.0);
        // A real scene is never constant.
        prop_assert!(v.max() - v.min() > 0.05);
    }

    #[test]
    fn rendering_is_deterministic_per_seed(seed in 0u64..5_000) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let g = sampler.sample(&mut StdRng::seed_from_u64(seed));
        let traj = g.world.simulate(0.1);
        let a = render_video(&g.world, &traj, &small_cfg(), &mut StdRng::seed_from_u64(seed));
        let b = render_video(&g.world, &traj, &small_cfg(), &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fog_reduces_dynamic_range(seed in 0u64..5_000, k in 0.03f32..0.15) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.1);
        let clear_cfg = RenderConfig { noise_std: 0.0, brightness_jitter: 0.0, ..small_cfg() };
        let fog_cfg = RenderConfig { weather: Weather::Fog(k), ..clear_cfg };
        let clear = render_video(&g.world, &traj, &clear_cfg, &mut StdRng::seed_from_u64(1));
        let foggy = render_video(&g.world, &traj, &fog_cfg, &mut StdRng::seed_from_u64(1));
        prop_assert!(foggy.max() - foggy.min() <= clear.max() - clear.min() + 1e-4);
        prop_assert!(!foggy.has_non_finite());
    }

    #[test]
    fn weather_post_process_stays_in_range(v0 in 0.0f32..1.0, k in 0.0f32..0.2) {
        let cam = Camera::standard(8, 8);
        for weather in [Weather::Clear, Weather::Fog(k), Weather::Night] {
            let mut frame = vec![v0; 64];
            apply_weather(weather, &cam, &mut frame);
            for &px in &frame {
                prop_assert!((0.0..=1.0 + 1e-5).contains(&px), "{weather:?}: {px}");
            }
        }
    }
}

#[cfg(test)]
mod traffic_light_tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_render::{render_video, RenderConfig};
    use tsdx_sdl::{EgoManeuver, RoadKind};
    use tsdx_sim::{LightPhase, SamplerConfig, ScenarioSampler};

    #[test]
    fn intersection_worlds_carry_phase_consistent_lights() {
        let sampler =
            ScenarioSampler::new(SamplerConfig { signal_heads: true, ..SamplerConfig::default() });
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let g = sampler.sample_on_road(&mut rng, RoadKind::Intersection);
            let light = g.world.light.expect("intersections have signal heads");
            if g.truth.ego == EgoManeuver::DecelerateToStop {
                assert_eq!(light.phase_at(g.world.duration), LightPhase::Red);
            } else {
                assert_eq!(light.phase_at(0.0), LightPhase::Green);
            }
        }
        let g = sampler.sample_on_road(&mut rng, RoadKind::Straight);
        assert!(g.world.light.is_none(), "no lights off intersections");
    }

    #[test]
    fn light_is_visible_as_dark_sky_pixels() {
        // Compare an intersection render with and without its light: the
        // version with the light must contain dark above-horizon pixels.
        let sampler = ScenarioSampler::new(SamplerConfig {
            duration: 8.0,
            max_events: 0,
            signal_heads: true,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let g = sampler.sample_on_road(&mut rng, RoadKind::Intersection);
        let traj = g.world.simulate(0.1);
        let cfg =
            RenderConfig { noise_std: 0.0, brightness_jitter: 0.0, ..RenderConfig::default() };
        let with = render_video(&g.world, &traj, &cfg, &mut StdRng::seed_from_u64(0));
        let mut no_light = g.world.clone();
        no_light.light = None;
        let without = render_video(&no_light, &traj, &cfg, &mut StdRng::seed_from_u64(0));

        let horizon = 13usize;
        let count_dark_sky = |v: &tsdx_tensor::Tensor| {
            let (t, h, w) = (8, 32, 32);
            let mut n = 0;
            for f in 0..t {
                for r in 0..horizon {
                    for c in 0..w {
                        if v.data()[(f * h + r) * w + c] < 0.3 {
                            n += 1;
                        }
                    }
                }
            }
            n
        };
        let dark_with = count_dark_sky(&with);
        let dark_without = count_dark_sky(&without);
        assert!(
            dark_with > dark_without + 5,
            "light not visible: {dark_with} vs {dark_without} dark sky pixels"
        );
    }
}
