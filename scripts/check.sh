#!/usr/bin/env bash
# Contributor gate: formatting, lints, and the tier-1 build/test pass.
# Run from the repository root before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> tier-1 again under a 2-worker pool (TSDX_NUM_THREADS=2)"
TSDX_NUM_THREADS=2 cargo test -q

echo "==> tier-1 again with the workspace arena disabled (TSDX_WORKSPACE=0)"
TSDX_WORKSPACE=0 cargo test -q

echo "==> steady-state allocation regression (arena must absorb buffer traffic)"
cargo test -q --release -p tsdx-core --test alloc_regression

echo "==> streaming parity under both workspace modes (session == full recompute, bitwise)"
TSDX_WORKSPACE=1 cargo test -q -p tsdx-core --test streaming_parity
TSDX_WORKSPACE=0 cargo test -q -p tsdx-core --test streaming_parity

echo "==> tensor suite with 8 concurrent test threads (metric-scope isolation)"
cargo test -q -p tsdx-tensor -- --test-threads=8

echo "==> tier-1 again under the int8 inference plane (TSDX_PRECISION=int8)"
TSDX_PRECISION=int8 cargo test -q

echo "==> streaming parity under int8 (cached groups == recompute, bitwise, on the i8 GEMM)"
TSDX_PRECISION=int8 cargo test -q -p tsdx-core --test streaming_parity

echo "==> f32 default stays bit-identical with the int8 plane packed (accuracy gate)"
cargo test -q -p tsdx-core --test quant_accuracy

echo "==> profile binary under int8 (i8 dispatch counters + per-kernel self time)"
TSDX_PRECISION=int8 cargo run -q -p tsdx-bench --release --bin profile -- --quick > /dev/null

echo "==> profile binary smoke test (self-time coverage + overhead asserts)"
cargo run -q -p tsdx-bench --release --bin profile -- --quick > /dev/null

echo "==> streambench smoke test (streamed windows sublinear + cache-counter asserts)"
cargo run -q -p tsdx-bench --release --bin streambench -- --quick > /dev/null

echo "==> fault-injection suite (worker panics, torn/corrupt checkpoints, NaN grads)"
cargo test -q --features fault-inject

echo "==> serve suite (HTTP hardening, batcher, error mapping, proptest fuzz)"
TSDX_NUM_THREADS=2 cargo test -q -p tsdx-serve

echo "==> serve fault-injection suite (accept stall, mid-chunk disconnect, session-table exhaustion, route/handler panics)"
TSDX_NUM_THREADS=2 cargo test -q -p tsdx-serve --features fault-inject --test fault_injection

echo "==> serve smoke (boot server, health check, extraction round-trip, drain assert)"
TSDX_NUM_THREADS=2 cargo test -q -p tsdx-serve --test smoke

echo "==> session smoke (lifecycle routes, HTTP-vs-core parity, limits, TTL eviction)"
TSDX_NUM_THREADS=2 cargo test -q -p tsdx-serve --test sessions


echo "==> muxbench smoke (cross-stream batching amortizes per-group encode cost)"
TSDX_NUM_THREADS=2 cargo run -q -p tsdx-bench --release --bin muxbench -- --quick > /dev/null

echo "==> servebench smoke (overload sheds typed, p99 within deadline, drain completeness)"
TSDX_NUM_THREADS=2 cargo run -q -p tsdx-bench --release --bin servebench -- --quick > /dev/null

echo "==> index suite (shard format, search parity across pool sizes and shard counts)"
TSDX_NUM_THREADS=2 cargo test -q -p tsdx-index

echo "==> index fault-injection suite (torn and bit-flipped shards load as typed errors)"
TSDX_NUM_THREADS=2 cargo test -q -p tsdx-index --features fault-inject

echo "==> indexbench smoke (build/QPS/recall asserts, pool and shard parity)"
TSDX_NUM_THREADS=2 cargo run -q -p tsdx-bench --release --bin indexbench -- --quick > /dev/null

echo "==> kill-and-resume determinism under a 2-worker pool"
TSDX_NUM_THREADS=2 cargo test -q --test resume_training

echo "All checks passed."
