//! Cross-crate consistency: the generator, simulator, kinematic labeler,
//! dataset labels, SDL embeddings, and baselines all agree with each other.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx::baselines::HeuristicExtractor;
use tsdx::data::{generate_dataset, ClipLabels, DatasetConfig};
use tsdx::metrics::{accuracy, scenario_report};
use tsdx::sdl::{embed, EMBED_DIM};
use tsdx::sim::{infer_ego_maneuver, SamplerConfig, ScenarioSampler};

#[test]
fn dataset_labels_always_derive_from_truth() {
    let clips = generate_dataset(&DatasetConfig { n_clips: 30, ..DatasetConfig::default() });
    for clip in &clips {
        clip.truth.validate().unwrap();
        assert_eq!(clip.labels, ClipLabels::from_scenario(&clip.truth));
        // The label decoding covers at least the primary actor.
        let decoded = clip.labels.to_scenario();
        assert_eq!(decoded.ego, clip.truth.ego);
        assert_eq!(decoded.road, clip.truth.road);
        assert_eq!(decoded.actors.len().min(1), clip.truth.actors.len().min(1));
    }
}

#[test]
fn kinematic_labeler_agrees_with_generator_at_scale() {
    let sampler = ScenarioSampler::new(SamplerConfig::default());
    let mut rng = StdRng::seed_from_u64(400);
    let mut ok = 0;
    let total = 40;
    for _ in 0..total {
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.05);
        if infer_ego_maneuver(&traj, g.truth.road) == g.truth.ego {
            ok += 1;
        }
    }
    assert!(ok >= total - 2, "labeler/generator disagreement: {ok}/{total}");
}

#[test]
fn truth_embeddings_identify_their_own_scenario() {
    // Self-retrieval: each clip's truth embedding is most similar to itself
    // (cosine 1) and the report machinery sees perfect predictions.
    let clips = generate_dataset(&DatasetConfig { n_clips: 20, ..DatasetConfig::default() });
    let truths: Vec<_> = clips.iter().map(|c| c.truth.clone()).collect();
    let report = scenario_report(&truths, &truths);
    assert_eq!(report.exact_match, 1.0);
    for t in &truths {
        assert_eq!(embed(t).len(), EMBED_DIM);
        assert!((tsdx::sdl::cosine(&embed(t), &embed(t)) - 1.0).abs() < 1e-5);
    }
}

#[test]
fn heuristic_beats_a_constant_majority_guess_on_ego() {
    let clips = generate_dataset(&DatasetConfig { n_clips: 80, ..DatasetConfig::default() });
    let h = HeuristicExtractor::default();
    let predictions: Vec<usize> = clips.iter().map(|c| h.predict(&c.video).ego).collect();
    let truths: Vec<usize> = clips.iter().map(|c| c.labels.ego).collect();
    let heuristic_acc = accuracy(&predictions, &truths);

    // Best constant guess.
    let mut counts = std::collections::HashMap::new();
    for &t in &truths {
        *counts.entry(t).or_insert(0usize) += 1;
    }
    let majority = *counts.values().max().unwrap() as f32 / truths.len() as f32;
    assert!(
        heuristic_acc > majority,
        "heuristic ({heuristic_acc:.3}) must beat the majority guess ({majority:.3})"
    );
}

#[test]
fn flip_augmentation_is_label_consistent_end_to_end() {
    let clips = generate_dataset(&DatasetConfig { n_clips: 12, ..DatasetConfig::default() });
    for clip in &clips {
        let flipped = tsdx::data::flip_clip(clip);
        flipped.truth.validate().unwrap();
        // Double flip restores everything.
        let twice = tsdx::data::flip_clip(&flipped);
        assert_eq!(twice.truth, clip.truth);
        assert_eq!(twice.video, clip.video);
        assert_eq!(twice.labels, clip.labels);
    }
}
