//! Checkpoint integration: a trained model survives a save/load round trip
//! bit-exactly, across the nn/core crate boundary.

use tsdx::core::{
    ClipModel, ModelConfig, ScenarioExtractor, TrainConfig, VideoScenarioTransformer,
};
use tsdx::data::{generate_dataset, DatasetConfig};
use tsdx::nn::{load_checkpoint, read_checkpoint, save_checkpoint, LrSchedule};
use tsdx::render::RenderConfig;

fn tiny_cfg() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tsdx-it-{name}-{}.bin", std::process::id()))
}

#[test]
fn trained_model_roundtrips_through_checkpoint() {
    let clips = generate_dataset(&DatasetConfig {
        n_clips: 24,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    });
    let mut extractor = ScenarioExtractor::untrained(tiny_cfg(), 1);
    extractor.fit(
        &clips,
        &TrainConfig {
            epochs: 3,
            batch_size: 8,
            schedule: LrSchedule::Constant(1e-3),
            ..TrainConfig::default()
        },
    );

    let path = tmp("roundtrip");
    save_checkpoint(extractor.model().params(), &path).unwrap();

    // Different init seed: every weight differs until the checkpoint loads.
    let mut fresh = ScenarioExtractor::untrained(tiny_cfg(), 777);
    let n = load_checkpoint(fresh.model_mut().params_mut(), &path).unwrap();
    assert_eq!(n, extractor.model().params().len(), "all tensors restored");

    for clip in &clips[..6] {
        assert_eq!(extractor.extract(&clip.video), fresh.extract(&clip.video));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_contents_match_parameter_names() {
    let model = VideoScenarioTransformer::new(tiny_cfg(), 2);
    let path = tmp("names");
    save_checkpoint(model.params(), &path).unwrap();
    let entries = read_checkpoint(&path).unwrap();
    assert_eq!(entries.len(), model.params().len());
    for (name, tensor) in &entries {
        let id = model
            .params()
            .ids()
            .find(|&id| model.params().name(id) == name)
            .unwrap_or_else(|| panic!("unknown checkpoint entry {name}"));
        assert_eq!(model.params().value(id), tensor);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_architecture_checkpoint_restores_partially() {
    let small = VideoScenarioTransformer::new(tiny_cfg(), 3);
    let path = tmp("partial");
    save_checkpoint(small.params(), &path).unwrap();

    // A deeper model shares the embedding/head names but not block 1+.
    let mut deeper =
        VideoScenarioTransformer::new(ModelConfig { spatial_depth: 2, ..tiny_cfg() }, 4);
    let restored = load_checkpoint(deeper.params_mut(), &path).unwrap();
    assert!(restored > 0, "shared tensors should restore");
    assert!(
        restored < deeper.params().len(),
        "extra-block tensors cannot come from the smaller checkpoint"
    );
    std::fs::remove_file(&path).ok();
}
