//! Kill-and-resume determinism: a training run interrupted at epoch k and
//! resumed from its crash-safe checkpoint must end with parameters
//! bit-identical to a never-interrupted run — at every pool size, since
//! unattended runs restart under whatever parallelism the host offers.

use tsdx::core::{ClipModel, ModelConfig, ResilienceConfig, TrainConfig, VideoScenarioTransformer};
use tsdx::data::{generate_dataset, Clip, DatasetConfig};
use tsdx::nn::{read_train_checkpoint, LrSchedule};
use tsdx::render::RenderConfig;
use tsdx::tensor::pool::with_forced_threads;

fn tiny_cfg() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

fn tiny_clips(n: usize) -> Vec<Clip> {
    generate_dataset(&DatasetConfig {
        n_clips: n,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    })
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 4,
        schedule: LrSchedule::Constant(2e-3),
        ..TrainConfig::default()
    }
}

fn params_of(model: &VideoScenarioTransformer) -> Vec<(String, Vec<f32>)> {
    model.params().iter().map(|(n, t)| (n.to_string(), t.to_vec())).collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tsdx-resume-it-{name}-{}.ckpt", std::process::id()))
}

/// Runs the interrupted-vs-uninterrupted comparison with every parallel
/// kernel forced into `threads` chunks.
fn kill_and_resume_with(threads: usize) -> Vec<(String, Vec<f32>)> {
    let clips = tiny_clips(12);
    let idx: Vec<usize> = (0..12).collect();
    let full_cfg = train_cfg(4);

    with_forced_threads(threads, || {
        // Reference: uninterrupted 4 epochs.
        let mut reference = VideoScenarioTransformer::new(tiny_cfg(), 5);
        tsdx::core::train_resilient(
            &mut reference,
            &clips,
            &idx,
            &full_cfg,
            &ResilienceConfig::default(),
        )
        .unwrap();

        // "Killed" run: 2 epochs with checkpointing, then the process dies
        // (we just drop the model), then a fresh differently-seeded model
        // resumes from the checkpoint and finishes.
        let path = tmp(&format!("threads{threads}"));
        std::fs::remove_file(&path).ok();
        let mut killed = VideoScenarioTransformer::new(tiny_cfg(), 5);
        tsdx::core::train_resilient(
            &mut killed,
            &clips,
            &idx,
            &train_cfg(2),
            &ResilienceConfig::checkpoint_to(&path),
        )
        .unwrap();
        drop(killed);

        let ck = read_train_checkpoint(&path).unwrap();
        assert_eq!(ck.state.epoch, 2, "checkpoint records the interruption epoch");
        assert!(ck.opt.is_some(), "optimizer moments travel with the checkpoint");
        assert!(ck.state.rng.is_some(), "RNG state travels with the checkpoint");

        let mut resumed = VideoScenarioTransformer::new(tiny_cfg(), 31337);
        tsdx::core::train_resilient(
            &mut resumed,
            &clips,
            &idx,
            &full_cfg,
            &ResilienceConfig::resume_from(&path),
        )
        .unwrap();
        std::fs::remove_file(&path).ok();

        let a = params_of(&reference);
        let b = params_of(&resumed);
        assert_eq!(a, b, "threads={threads}: resumed run diverged from uninterrupted run");
        a
    })
}

#[test]
fn kill_and_resume_is_bit_identical_at_every_pool_size() {
    let serial = kill_and_resume_with(1);
    for threads in [2usize, 4] {
        let chunked = kill_and_resume_with(threads);
        assert_eq!(
            serial, chunked,
            "final parameters must also agree across pool sizes ({threads} vs 1)"
        );
    }
}
