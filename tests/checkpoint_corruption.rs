//! Property tests for checkpoint corruption detection.
//!
//! The crash-safety story in DESIGN.md §6.3 rests on one invariant: a reader
//! either gets the exact bytes a writer produced, or a typed
//! [`CheckpointError`] — never a panic, and never a silently-wrong load.
//! These tests fuzz the two physical failure modes (torn writes and at-rest
//! bit rot) over a real saved checkpoint and assert that invariant for every
//! sampled mutation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::proptest;
use tsdx::nn::{
    read_train_checkpoint, save_train_checkpoint, AdamWState, CheckpointError, ParamStore,
    TrainCheckpoint, TrainState,
};
use tsdx::tensor::Tensor;

/// Builds a representative checkpoint (params + optimizer moments + RNG
/// state) and returns its exact on-disk encoding.
fn canonical() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut store = ParamStore::new();
        store.add("encoder.w", Tensor::from_fn(&[8, 8], |i| (i as f32).sin()));
        store.add("encoder.b", Tensor::from_fn(&[8], |i| i as f32 * 0.25));
        store.add("head.w", Tensor::from_fn(&[8, 3], |i| 1.0 / (i + 1) as f32));
        let ckpt = TrainCheckpoint {
            state: TrainState {
                epoch: 3,
                step: 97,
                lr_scale: 0.5,
                consecutive_bad: 1,
                skipped_steps: 2,
                rng: Some([1, 2, 3, 0xDEAD_BEEF]),
            },
            opt: Some(AdamWState {
                t: 97,
                m: store.iter().map(|(_, t)| Tensor::full(t.shape(), 0.125)).collect(),
                v: store.iter().map(|(_, t)| Tensor::full(t.shape(), 0.0625)).collect(),
            }),
            params: store.iter().map(|(n, t)| (n.to_string(), t.clone())).collect(),
        };
        let path = tmp("canonical");
        save_train_checkpoint(&ckpt, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Sanity: the pristine encoding round-trips, so any rejection below
        // is caused by the mutation, not a broken fixture.
        std::fs::write(&path, &bytes).unwrap();
        let back = read_train_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ckpt, "pristine checkpoint must round-trip");
        bytes
    })
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tsdx-corrupt-{name}-{}.ckpt", std::process::id()))
}

/// Writes `bytes` to a scratch file and asserts the reader rejects them with
/// a typed [`CheckpointError`] rather than panicking or returning data.
fn assert_rejected(name: &str, bytes: &[u8], what: &str) -> CheckpointError {
    let path = tmp(name);
    std::fs::write(&path, bytes).unwrap();
    let outcome = catch_unwind(AssertUnwindSafe(|| read_train_checkpoint(&path)));
    std::fs::remove_file(&path).ok();
    match outcome {
        Err(_) => panic!("{what}: reader panicked instead of returning CheckpointError"),
        Ok(Ok(_)) => panic!("{what}: corrupted checkpoint loaded as if it were valid"),
        Ok(Err(e)) => e,
    }
}

proptest! {
    #[test]
    fn every_truncation_point_is_rejected(frac in 0.0f64..1.0) {
        let bytes = canonical();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let err = assert_rejected(
            "truncate",
            &bytes[..cut.min(bytes.len() - 1)],
            &format!("truncation to {cut} bytes"),
        );
        // A tear after the length header is diagnosed as exactly that; tears
        // inside the first 16 bytes surface as a magic/format violation.
        if cut >= 16 {
            proptest::prop_assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "cut at {} bytes should be Truncated, got: {}", cut, err
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected(frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = canonical();
        let byte = ((bytes.len() as f64) * frac) as usize % bytes.len();
        let mut mutated = bytes.to_vec();
        mutated[byte] ^= 1 << bit;
        assert_rejected(
            "bitflip",
            &mutated,
            &format!("bit {bit} of byte {byte} flipped"),
        );
    }
}

#[test]
fn boundary_mutations_are_rejected() {
    let bytes = canonical();
    // Deterministic edge cases the fuzz loops may not sample: empty file,
    // magic-only prefix, one byte short, and flips in the first/last byte.
    assert_rejected("empty", &[], "empty file");
    assert_rejected("magic-only", &bytes[..8], "8-byte magic-only prefix");
    let err = assert_rejected("one-short", &bytes[..bytes.len() - 1], "one byte short");
    assert!(matches!(err, CheckpointError::Truncated { .. }), "{err}");
    for byte in [0, bytes.len() - 1] {
        let mut mutated = bytes.to_vec();
        mutated[byte] ^= 0x01;
        assert_rejected("edge-flip", &mutated, &format!("flip in byte {byte}"));
    }
}
