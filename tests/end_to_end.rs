//! End-to-end integration: simulator → renderer → dataset → transformer →
//! SDL, across crate boundaries.

use tsdx::core::{evaluate, ModelConfig, ScenarioExtractor, TrainConfig, VideoScenarioTransformer};
use tsdx::data::{generate_dataset, stratified_split, DatasetConfig};
use tsdx::nn::LrSchedule;
use tsdx::render::RenderConfig;

/// Small-but-real configuration used by the integration tests.
fn tiny_model_cfg() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 32,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        mlp_ratio: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

fn tiny_dataset(n: usize) -> Vec<tsdx::data::Clip> {
    generate_dataset(&DatasetConfig {
        n_clips: n,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    })
}

#[test]
fn training_beats_chance_on_held_out_clips() {
    let clips = tiny_dataset(240);
    let split = stratified_split(&clips, (0.8, 0.0), 3);
    let mut model = VideoScenarioTransformer::new(tiny_model_cfg(), 3);
    let steps = (split.train.len().div_ceil(16) * 50) as u32;
    tsdx::core::train(
        &mut model,
        &clips,
        &split.train,
        &TrainConfig {
            epochs: 50,
            batch_size: 16,
            schedule: LrSchedule::WarmupCosine { base: 1e-3, warmup: 20, total: steps, min: 5e-5 },
            seed: 3,
            ..TrainConfig::default()
        },
    );
    let s = evaluate(&model, &clips, &split.test);
    // Majority-class chance: ego ~30%, road ~30%. Require clear daylight on
    // at least the ego head and above-chance mean.
    assert!(s.ego_acc > 0.40, "ego accuracy too low: {:.3}", s.ego_acc);
    assert!(s.mean_accuracy() > 0.35, "mean accuracy too low: {:.3}", s.mean_accuracy());
}

#[test]
fn extractor_outputs_valid_parseable_sdl() {
    let clips = tiny_dataset(4);
    let extractor = ScenarioExtractor::untrained(tiny_model_cfg(), 5);
    for clip in &clips {
        let scenario = extractor.extract(&clip.video);
        scenario.validate().expect("extracted SDL must validate");
        let text = scenario.to_string();
        let parsed: tsdx::Scenario = text.parse().expect("extracted SDL must parse");
        assert_eq!(parsed, scenario, "SDL text round-trip");
    }
}

#[test]
fn extraction_is_deterministic() {
    let clips = tiny_dataset(3);
    let a = ScenarioExtractor::untrained(tiny_model_cfg(), 9);
    let b = ScenarioExtractor::untrained(tiny_model_cfg(), 9);
    for clip in &clips {
        assert_eq!(a.extract(&clip.video), b.extract(&clip.video));
    }
}

#[test]
fn batch_extraction_matches_single_extraction() {
    let clips = tiny_dataset(5);
    let extractor = ScenarioExtractor::untrained(tiny_model_cfg(), 11);
    let batch = extractor.extract_batch(&clips);
    for (clip, from_batch) in clips.iter().zip(&batch) {
        assert_eq!(&extractor.extract(&clip.video), from_batch);
    }
}
