//! Deterministic fault-injection suite (requires `--features fault-inject`).
//!
//! Each test arms one hook in `tsdx::tensor::faults`, runs the real code
//! path, and asserts the recovery behavior promised in DESIGN.md §6.3:
//! worker panics re-raise on the dispatcher with the pool intact, torn and
//! bit-flipped checkpoints surface as typed [`CheckpointError`]s, and a NaN
//! gradient is skipped by the training guard without aborting the run.
#![cfg(feature = "fault-inject")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

use tsdx::core::{ClipModel, ModelConfig, ResilienceConfig, TrainConfig, VideoScenarioTransformer};
use tsdx::data::{generate_dataset, Clip, DatasetConfig};
use tsdx::nn::{
    read_train_checkpoint, save_train_checkpoint, CheckpointError, LrSchedule, ParamStore,
    TrainCheckpoint,
};
use tsdx::render::RenderConfig;
use tsdx::tensor::pool::{last_panic, map_chunks, with_forced_threads};
use tsdx::tensor::{faults, Tensor};

/// The fault registry is process-global, so tests that arm it must not
/// overlap; each one holds this lock and clears the registry on both ends.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn armed<R>(f: impl FnOnce() -> R) -> R {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear_all();
    let out = f();
    faults::clear_all();
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tsdx-fault-{name}-{}.ckpt", std::process::id()))
}

fn sample_checkpoint() -> TrainCheckpoint {
    let mut store = ParamStore::new();
    store.add("w", Tensor::from_fn(&[6, 6], |i| i as f32 * 0.5));
    store.add("b", Tensor::from_fn(&[6], |i| -(i as f32)));
    TrainCheckpoint::from_params(&store)
}

#[test]
fn injected_worker_panic_reraises_and_pool_recovers() {
    armed(|| {
        with_forced_threads(4, || {
            faults::arm_worker_panic(2);
            let caught = catch_unwind(AssertUnwindSafe(|| map_chunks(4, |i| i * 10)));
            let payload = caught.expect_err("armed dispatch must panic");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("panic payload is a string");
            assert!(
                msg.contains("injected fault: worker panic at chunk 2"),
                "dispatcher re-raises the worker's own payload, got: {msg}"
            );
            let info = last_panic().expect("panic diagnostics recorded");
            assert_eq!(info.chunk, 2);

            // The hook is one-shot, and the pool must still be usable: the
            // same workers run the next dispatch and produce correct output.
            let clean = map_chunks(4, |i| i * 10);
            assert_eq!(clean, vec![0, 10, 20, 30]);
            assert!(last_panic().is_none(), "clean dispatch clears diagnostics");
        });
    });
}

#[test]
fn torn_checkpoint_write_is_detected_on_read() {
    armed(|| {
        let path = tmp("tear");
        // 40 bytes is past the 16-byte header but well before the payload
        // ends, so the reader should diagnose a truncation specifically.
        faults::arm_checkpoint_tear(40);
        save_train_checkpoint(&sample_checkpoint(), &path).unwrap();
        let err = read_train_checkpoint(&path).expect_err("torn file must not load");
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, CheckpointError::Truncated { expected, actual }
                if actual == 40 && expected > actual),
            "expected Truncated, got: {err}"
        );
    });
}

#[test]
fn flipped_checkpoint_bit_is_detected_on_read() {
    armed(|| {
        let path = tmp("flip");
        // Flip one bit deep inside the tensor payload (byte 225, bit 3).
        faults::arm_checkpoint_bit_flip(225 * 8 + 3);
        save_train_checkpoint(&sample_checkpoint(), &path).unwrap();
        let err = read_train_checkpoint(&path).expect_err("corrupt file must not load");
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Checksum { .. }), "expected Checksum, got: {err}");
    });
}

fn tiny_cfg() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

fn tiny_clips(n: usize) -> Vec<Clip> {
    generate_dataset(&DatasetConfig {
        n_clips: n,
        render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
        ..DatasetConfig::default()
    })
}

#[test]
fn nan_gradient_is_skipped_without_aborting_training() {
    armed(|| {
        let clips = tiny_clips(8);
        let idx: Vec<usize> = (0..8).collect();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            schedule: LrSchedule::Constant(2e-3),
            ..TrainConfig::default()
        };

        // Poison the gradients of step 1 (second batch of epoch 1).
        faults::arm_nan_grad(1);
        let mut model = VideoScenarioTransformer::new(tiny_cfg(), 9);
        let report = tsdx::core::train_resilient(
            &mut model,
            &clips,
            &idx,
            &cfg,
            &ResilienceConfig::default(),
        )
        .expect("guarded run survives an injected NaN gradient");
        assert_eq!(report.skipped_steps, 1, "exactly the poisoned batch is skipped");
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        // The surviving parameters are still finite and usable.
        for (name, t) in model.params().iter() {
            assert!(!t.has_non_finite(), "{name} went non-finite after the skip");
        }
    });
}
